/**
 * @file
 * Parallel experiment execution for the figure/table benches.
 *
 * Every paper figure is a sweep over independent (SystemConfig,
 * workload) points: each run owns its CPU, ORAM, DRAM and policy
 * state, so points are embarrassingly parallel.  The runner is a
 * fixed-size thread pool that executes submitted points concurrently
 * and hands results back through futures, so a bench can enqueue its
 * whole sweep up front and then print rows in submission order —
 * the printed output is byte-identical to a sequential run.
 *
 * With one thread the runner executes every task inline at submission
 * time, which *is* the old sequential path (same execution order,
 * same interleaving of any stderr diagnostics).
 *
 * A process-wide trace cache backs the runner: the Tiny/RD/HD triples
 * of a figure all replay the same (workload, misses, seed) trace, and
 * regenerating it per point used to be the benches' second-largest
 * cost.  Cached traces are immutable and shared by pointer.
 */

#ifndef SBORAM_SIM_EXPERIMENTRUNNER_HH
#define SBORAM_SIM_EXPERIMENTRUNNER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "System.hh"
#include "common/Errors.hh"
#include "crypto/Prf.hh"
#include "workload/Workload.hh"

namespace sboram {

namespace detail {

/** Shared completion state behind a Future. */
template <typename T>
struct FutureState
{
    std::mutex mutex;
    std::condition_variable ready;
    std::optional<T> value;
    /** Set instead of value when the task threw; get() rethrows. */
    std::exception_ptr error;
};

} // namespace detail

/**
 * Handle to a submitted experiment's result.  get() blocks until the
 * worker finishes; the reference stays valid as long as any copy of
 * the future is alive.  A task that threw fails the future: get()
 * rethrows the exception on the caller's thread (every call — a
 * failed future stays failed).
 */
template <typename T>
class Future
{
  public:
    Future() = default;

    const T &
    get() const
    {
        std::unique_lock<std::mutex> lock(_state->mutex);
        // sblint:allow-next-line(unbounded-wait): the pool completes or fails every task — the error path stores _state->error and notifies, so this wait always terminates
        _state->ready.wait(lock, [&] {
            return _state->value.has_value() ||
                   _state->error != nullptr;
        });
        if (_state->error)
            std::rethrow_exception(_state->error);
        return *_state->value;
    }

    bool valid() const { return _state != nullptr; }

    explicit Future(std::shared_ptr<detail::FutureState<T>> state)
        : _state(std::move(state)) {}

  private:
    std::shared_ptr<detail::FutureState<T>> _state;
};

/** Immutable, shareable LLC-miss trace. */
using SharedTrace = std::shared_ptr<const std::vector<LlcMissRecord>>;

/**
 * Process-wide trace cache keyed by (workload, misses, seed).  The
 * first caller generates the trace; concurrent callers for the same
 * key block until it is ready.  Repeated calls return the same
 * pointer (pointer-stable for the life of the process).
 */
SharedTrace cachedTrace(const std::string &workload,
                        std::uint64_t misses, std::uint64_t seed);

/**
 * How a retried task backs off and when it gives up.  All fields are
 * deterministic inputs: the same (policy, attempt) pair always yields
 * the same delay, so a sweep's retry schedule is reproducible —
 * attempt timing never depends on wall clock, thread count, or launch
 * order.
 */
struct RetryPolicy
{
    /** Extra attempts after the first (0 = fail on first error). */
    unsigned retries = 0;
    /** First delay in ms; doubles each attempt.  0 = no sleeping
     *  (the historic immediate-rerun behavior). */
    unsigned backoffBaseMs = 2;
    /** Ceiling for the exponential term (jitter rides on top). */
    unsigned backoffCapMs = 64;
    /** Total sleep budget in ms across all attempts; exceeding it
     *  throws RetryBudgetExhaustedError instead of sleeping again.
     *  0 = unlimited (only `retries` bounds the loop). */
    unsigned budgetMs = 0;
    /** Seed for the PRF jitter (decorrelates concurrent points). */
    std::uint64_t jitterSeed = 0;
    /** Point name carried into the failure record. */
    std::string label = "point";
};

/**
 * Delay before retry number @p attempt (0-based: the delay slept
 * after attempt 0 failed).  Exponential in the attempt number, capped
 * at backoffCapMs, plus PRF jitter in [0, backoffBaseMs) keyed by
 * (jitterSeed, label, attempt) — pure and deterministic.
 */
inline std::uint64_t
retryBackoffMs(const RetryPolicy &p, unsigned attempt)
{
    if (p.backoffBaseMs == 0)
        return 0;
    std::uint64_t delay = p.backoffBaseMs;
    for (unsigned i = 0; i < attempt && delay < p.backoffCapMs; ++i)
        delay *= 2;
    if (delay > p.backoffCapMs)
        delay = p.backoffCapMs;
    PrfKey key;
    key.lo = p.jitterSeed * 0x9e3779b97f4a7c15ULL + 0xb0ffULL;
    key.hi = p.jitterSeed ^ 0x5bd1e9955bd1e995ULL;
    std::uint64_t labelHash = 0xcbf29ce484222325ULL;
    for (char c : p.label)
        labelHash = (labelHash ^ static_cast<unsigned char>(c)) *
                    0x100000001b3ULL;
    return delay + prf64(key, labelHash, attempt) % p.backoffBaseMs;
}

/** One experiment point for batch submission. */
struct ExperimentPoint
{
    SystemConfig cfg;
    std::string workload;
    std::uint64_t misses = 0;
    std::uint64_t seed = 0;
    /** Extra attempts after a retryable SimError (transient faults). */
    unsigned retries = 0;
};

class ExperimentRunner
{
  public:
    /**
     * @param threads Worker count.  1 (or 0) means no workers: tasks
     * run inline at submission, reproducing the sequential path.
     */
    explicit ExperimentRunner(unsigned threads = defaultThreads());
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    unsigned threads() const { return _threads; }

    /**
     * Run one experiment point (trace via the process-wide cache).
     * @param retries Extra attempts after a *retryable* SimError
     * (e.g. a transient-fault CorruptionError).  Each retry shifts
     * the point's fault seed so the rerun sees a fresh fault
     * realisation; attempt 0 is always the configured seed.
     */
    Future<RunMetrics> submit(const SystemConfig &cfg,
                              std::string workload,
                              std::uint64_t misses,
                              std::uint64_t seed,
                              unsigned retries = 0);

    /** Run one point over an already-materialised trace. */
    Future<RunMetrics> submitTrace(const SystemConfig &cfg,
                                   SharedTrace trace,
                                   unsigned retries = 0);

    /**
     * Run a batch and return results in submission order, regardless
     * of completion order.
     */
    std::vector<RunMetrics>
    runAll(const std::vector<ExperimentPoint> &points);

    /**
     * Defer an arbitrary callable onto the pool (benches with custom
     * drive loops — stash occupancy, security distinguishers — are
     * sweeps too).  The callable must be self-contained: it may not
     * touch state shared with other tasks.
     */
    template <typename Fn>
    auto
    defer(Fn fn) -> Future<std::invoke_result_t<Fn &>>
    {
        using R = std::invoke_result_t<Fn &>;
        auto state = std::make_shared<detail::FutureState<R>>();
        post([state, fn = std::move(fn)]() mutable {
            // A throwing task must fail its future, not unwind the
            // worker thread: an uncaught exception here would
            // std::terminate the process and leave every other
            // get() deadlocked.
            try {
                R result = fn();
                std::lock_guard<std::mutex> lock(state->mutex);
                state->value.emplace(std::move(result));
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->error = std::current_exception();
            }
            state->ready.notify_all();
        });
        return Future<R>(state);
    }

    /**
     * defer() with bounded, backed-off retry: @p fn receives the
     * attempt number (0-based).  A SimError whose retryable() is true
     * is retried after a deterministic exponential-backoff delay
     * (retryBackoffMs) until either the attempt count or the sleep
     * budget of @p policy is spent.  Attempt exhaustion rethrows the
     * last underlying error; budget exhaustion throws
     * RetryBudgetExhaustedError — a structured per-point record the
     * sweep can log without tearing down.  Non-retryable errors fail
     * the future immediately.
     */
    template <typename Fn>
    auto
    deferRetry(Fn fn, RetryPolicy policy)
        -> Future<std::invoke_result_t<Fn &, unsigned>>
    {
        return defer(
            [fn = std::move(fn), policy = std::move(policy)]() mutable {
                std::uint64_t sleptMs = 0;
                for (unsigned attempt = 0;; ++attempt) {
                    try {
                        return fn(attempt);
                    } catch (const SimError &e) {
                        if (!e.retryable() || attempt >= policy.retries)
                            throw;
                        const std::uint64_t delay =
                            retryBackoffMs(policy, attempt);
                        if (policy.budgetMs != 0 &&
                            sleptMs + delay > policy.budgetMs)
                            throw RetryBudgetExhaustedError(
                                policy.label, attempt + 1, sleptMs,
                                e.what());
                        if (delay > 0)
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(delay));
                        sleptMs += delay;
                    }
                }
            });
    }

    /** Retry with the default backoff policy (legacy signature). */
    template <typename Fn>
    auto
    deferRetry(Fn fn, unsigned retries)
        -> Future<std::invoke_result_t<Fn &, unsigned>>
    {
        RetryPolicy policy;
        policy.retries = retries;
        return deferRetry(std::move(fn), std::move(policy));
    }

    /**
     * Worker count from the environment: SB_BENCH_THREADS when set
     * and valid (>= 1), else std::thread::hardware_concurrency().
     * SB_BENCH_THREADS=1 forces the sequential path.
     */
    static unsigned defaultThreads();

    /** Shared runner used by all benches of one process. */
    static ExperimentRunner &global();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    unsigned _threads;
    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::deque<std::function<void()>> _queue;
    bool _stop = false;
};

} // namespace sboram

#endif // SBORAM_SIM_EXPERIMENTRUNNER_HH
