/**
 * @file
 * Parallel experiment execution for the figure/table benches.
 *
 * Every paper figure is a sweep over independent (SystemConfig,
 * workload) points: each run owns its CPU, ORAM, DRAM and policy
 * state, so points are embarrassingly parallel.  The runner is a
 * fixed-size thread pool that executes submitted points concurrently
 * and hands results back through futures, so a bench can enqueue its
 * whole sweep up front and then print rows in submission order —
 * the printed output is byte-identical to a sequential run.
 *
 * With one thread the runner executes every task inline at submission
 * time, which *is* the old sequential path (same execution order,
 * same interleaving of any stderr diagnostics).
 *
 * A process-wide trace cache backs the runner: the Tiny/RD/HD triples
 * of a figure all replay the same (workload, misses, seed) trace, and
 * regenerating it per point used to be the benches' second-largest
 * cost.  Cached traces are immutable and shared by pointer.
 */

#ifndef SBORAM_SIM_EXPERIMENTRUNNER_HH
#define SBORAM_SIM_EXPERIMENTRUNNER_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "System.hh"
#include "common/Errors.hh"
#include "workload/Workload.hh"

namespace sboram {

namespace detail {

/** Shared completion state behind a Future. */
template <typename T>
struct FutureState
{
    std::mutex mutex;
    std::condition_variable ready;
    std::optional<T> value;
    /** Set instead of value when the task threw; get() rethrows. */
    std::exception_ptr error;
};

} // namespace detail

/**
 * Handle to a submitted experiment's result.  get() blocks until the
 * worker finishes; the reference stays valid as long as any copy of
 * the future is alive.  A task that threw fails the future: get()
 * rethrows the exception on the caller's thread (every call — a
 * failed future stays failed).
 */
template <typename T>
class Future
{
  public:
    Future() = default;

    const T &
    get() const
    {
        std::unique_lock<std::mutex> lock(_state->mutex);
        _state->ready.wait(lock, [&] {
            return _state->value.has_value() ||
                   _state->error != nullptr;
        });
        if (_state->error)
            std::rethrow_exception(_state->error);
        return *_state->value;
    }

    bool valid() const { return _state != nullptr; }

    explicit Future(std::shared_ptr<detail::FutureState<T>> state)
        : _state(std::move(state)) {}

  private:
    std::shared_ptr<detail::FutureState<T>> _state;
};

/** Immutable, shareable LLC-miss trace. */
using SharedTrace = std::shared_ptr<const std::vector<LlcMissRecord>>;

/**
 * Process-wide trace cache keyed by (workload, misses, seed).  The
 * first caller generates the trace; concurrent callers for the same
 * key block until it is ready.  Repeated calls return the same
 * pointer (pointer-stable for the life of the process).
 */
SharedTrace cachedTrace(const std::string &workload,
                        std::uint64_t misses, std::uint64_t seed);

/** One experiment point for batch submission. */
struct ExperimentPoint
{
    SystemConfig cfg;
    std::string workload;
    std::uint64_t misses = 0;
    std::uint64_t seed = 0;
    /** Extra attempts after a retryable SimError (transient faults). */
    unsigned retries = 0;
};

class ExperimentRunner
{
  public:
    /**
     * @param threads Worker count.  1 (or 0) means no workers: tasks
     * run inline at submission, reproducing the sequential path.
     */
    explicit ExperimentRunner(unsigned threads = defaultThreads());
    ~ExperimentRunner();

    ExperimentRunner(const ExperimentRunner &) = delete;
    ExperimentRunner &operator=(const ExperimentRunner &) = delete;

    unsigned threads() const { return _threads; }

    /**
     * Run one experiment point (trace via the process-wide cache).
     * @param retries Extra attempts after a *retryable* SimError
     * (e.g. a transient-fault CorruptionError).  Each retry shifts
     * the point's fault seed so the rerun sees a fresh fault
     * realisation; attempt 0 is always the configured seed.
     */
    Future<RunMetrics> submit(const SystemConfig &cfg,
                              std::string workload,
                              std::uint64_t misses,
                              std::uint64_t seed,
                              unsigned retries = 0);

    /** Run one point over an already-materialised trace. */
    Future<RunMetrics> submitTrace(const SystemConfig &cfg,
                                   SharedTrace trace,
                                   unsigned retries = 0);

    /**
     * Run a batch and return results in submission order, regardless
     * of completion order.
     */
    std::vector<RunMetrics>
    runAll(const std::vector<ExperimentPoint> &points);

    /**
     * Defer an arbitrary callable onto the pool (benches with custom
     * drive loops — stash occupancy, security distinguishers — are
     * sweeps too).  The callable must be self-contained: it may not
     * touch state shared with other tasks.
     */
    template <typename Fn>
    auto
    defer(Fn fn) -> Future<std::invoke_result_t<Fn &>>
    {
        using R = std::invoke_result_t<Fn &>;
        auto state = std::make_shared<detail::FutureState<R>>();
        post([state, fn = std::move(fn)]() mutable {
            // A throwing task must fail its future, not unwind the
            // worker thread: an uncaught exception here would
            // std::terminate the process and leave every other
            // get() deadlocked.
            try {
                R result = fn();
                std::lock_guard<std::mutex> lock(state->mutex);
                state->value.emplace(std::move(result));
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->error = std::current_exception();
            }
            state->ready.notify_all();
        });
        return Future<R>(state);
    }

    /**
     * defer() with bounded retry: @p fn receives the attempt number
     * (0-based).  A SimError whose retryable() is true is retried up
     * to @p retries extra times; the final error fails the future.
     * Non-retryable errors fail immediately.
     */
    template <typename Fn>
    auto
    deferRetry(Fn fn, unsigned retries)
        -> Future<std::invoke_result_t<Fn &, unsigned>>
    {
        return defer([fn = std::move(fn), retries]() mutable {
            for (unsigned attempt = 0;; ++attempt) {
                try {
                    return fn(attempt);
                } catch (const SimError &e) {
                    if (!e.retryable() || attempt >= retries)
                        throw;
                }
            }
        });
    }

    /**
     * Worker count from the environment: SB_BENCH_THREADS when set
     * and valid (>= 1), else std::thread::hardware_concurrency().
     * SB_BENCH_THREADS=1 forces the sequential path.
     */
    static unsigned defaultThreads();

    /** Shared runner used by all benches of one process. */
    static ExperimentRunner &global();

  private:
    void post(std::function<void()> task);
    void workerLoop();

    unsigned _threads;
    std::vector<std::thread> _workers;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::deque<std::function<void()>> _queue;
    bool _stop = false;
};

} // namespace sboram

#endif // SBORAM_SIM_EXPERIMENTRUNNER_HH
