#include "ExperimentRunner.hh"

#include <cstdlib>
#include <future>
#include <unordered_map>

#include "ckpt/Checkpoint.hh"
#include "common/Logging.hh"
#include "obs/Observer.hh"

namespace sboram {

namespace {

struct TraceKey
{
    std::string workload;
    std::uint64_t misses;
    std::uint64_t seed;

    bool operator==(const TraceKey &) const = default;
};

struct TraceKeyHash
{
    std::size_t
    operator()(const TraceKey &k) const
    {
        std::size_t h = std::hash<std::string>{}(k.workload);
        h ^= std::hash<std::uint64_t>{}(k.misses) + 0x9e3779b9 +
             (h << 6) + (h >> 2);
        h ^= std::hash<std::uint64_t>{}(k.seed) + 0x9e3779b9 +
             (h << 6) + (h >> 2);
        return h;
    }
};

std::mutex g_traceMutex;
std::unordered_map<TraceKey, std::shared_future<SharedTrace>,
                   TraceKeyHash> g_traceCache;

/**
 * Stable identity of one experiment point across process relaunches:
 * everything that determines the run's outcome, including the retry
 * attempt (each attempt shifts the fault seed, so attempts are
 * distinct points with distinct snapshots).
 */
std::uint64_t
pointKey(const SystemConfig &cfg, const std::string &workload,
         std::uint64_t misses, std::uint64_t seed, unsigned attempt)
{
    ckpt::Serializer s;
    s.u64(configFingerprint(cfg));
    s.str(workload);
    s.u64(misses);
    s.u64(seed);
    s.u32(attempt);
    return ckpt::fnv1a(s.buffer().data(), s.buffer().size());
}

/**
 * Execute one point with checkpoint durability when SB_CKPT_DIR is
 * active: a completed point is answered from its .done marker (an
 * invalid marker just reruns the point), an in-flight point resumes
 * from its newest valid snapshot, and completion atomically persists
 * the final metrics before the in-flight snapshots are deleted.
 */
RunMetrics
runPointDurable(SystemConfig cfg, const std::string &workload,
                std::uint64_t misses, std::uint64_t seed,
                unsigned attempt, const SharedTrace &trace)
{
    const std::string *dir = ckpt::activeDirectory();
    if (dir == nullptr)
        return runSystem(cfg, *trace);

    if (cfg.checkpointInterval == 0)
        cfg.checkpointInterval = ckpt::defaultInterval();
    ckpt::CheckpointSession session(
        *dir, pointKey(cfg, workload, misses, seed, attempt));

    if (auto done = session.loadResult()) {
        auto d = done->section(ckpt::kSectionResult);
        return loadRunMetrics(d);
    }

    RunMetrics m = runSystem(cfg, *trace, &session);
    ckpt::SnapshotWriter writer;
    saveRunMetrics(writer.section(ckpt::kSectionResult), m);
    session.commitResult(writer);
    session.removeSnapshots();
    return m;
}

} // namespace

SharedTrace
cachedTrace(const std::string &workload, std::uint64_t misses,
            std::uint64_t seed)
{
    // Two-phase lookup so one producer generates while others (for
    // the same key) wait on the shared future instead of repeating
    // the work, and lookups for other keys proceed unblocked.
    std::promise<SharedTrace> producer;
    std::shared_future<SharedTrace> slot;
    bool isProducer = false;
    {
        std::lock_guard<std::mutex> lock(g_traceMutex);
        TraceKey key{workload, misses, seed};
        auto it = g_traceCache.find(key);
        if (it == g_traceCache.end()) {
            slot = producer.get_future().share();
            g_traceCache.emplace(std::move(key), slot);
            isProducer = true;
        } else {
            slot = it->second;
        }
    }
    if (isProducer) {
        auto trace = std::make_shared<const std::vector<LlcMissRecord>>(
            makeTrace(workload, misses, seed));
        producer.set_value(trace);
        return trace;
    }
    // sblint:allow-next-line(unbounded-wait): the producer that inserted the cache slot always sets the value before returning (or the process dies with it); entries are never abandoned
    return slot.get();
}

ExperimentRunner::ExperimentRunner(unsigned threads)
    : _threads(threads == 0 ? 1 : threads)
{
    if (_threads < 2)
        return;  // Sequential path: no workers, tasks run inline.
    _workers.reserve(_threads);
    for (unsigned i = 0; i < _threads; ++i)
        _workers.emplace_back([this, i] {
            // Worker lanes are 1-based; 0 is the inline/main lane.
            obs::setWorkerIndex(i + 1);
            workerLoop();
        });
}

ExperimentRunner::~ExperimentRunner()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &w : _workers)
        w.join();
}

void
ExperimentRunner::post(std::function<void()> task)
{
    if (_workers.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(task));
    }
    _wake.notify_one();
}

void
ExperimentRunner::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            // sblint:allow-next-line(unbounded-wait): the destructor sets _stop under the lock and notifies all; workers always wake to drain or exit
            _wake.wait(lock,
                       [&] { return _stop || !_queue.empty(); });
            if (_queue.empty())
                return;  // _stop and drained.
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        task();
    }
}

Future<RunMetrics>
ExperimentRunner::submit(const SystemConfig &cfg, std::string workload,
                         std::uint64_t misses, std::uint64_t seed,
                         unsigned retries)
{
    // Trace generation happens on the worker so it parallelises too;
    // the cache deduplicates concurrent generation per key.
    RetryPolicy policy;
    policy.retries = retries;
    policy.label = workload;
    policy.jitterSeed = seed ^ configFingerprint(cfg);
    return deferRetry(
        [cfg, workload = std::move(workload), misses,
         seed](unsigned attempt) {
            SharedTrace trace = cachedTrace(workload, misses, seed);
            // A retry reruns the point under a shifted fault seed: a
            // fresh fault realisation, same workload.  Attempt 0 is
            // bit-identical to a plain submit.
            SystemConfig c = cfg;
            c.oram.fault.seed += attempt;
            obs::applyEnv(c.obs);
            // Stable artifact names: one label per point identity,
            // independent of thread count and launch order.
            if (c.obs.any() && c.obs.label.empty())
                c.obs.label = obs::makeLabel(
                    workload,
                    pointKey(c, workload, misses, seed, attempt));
            return runPointDurable(c, workload, misses, seed, attempt,
                                   trace);
        },
        std::move(policy));
}

Future<RunMetrics>
ExperimentRunner::submitTrace(const SystemConfig &cfg,
                              SharedTrace trace, unsigned retries)
{
    SB_ASSERT(trace != nullptr, "null trace submitted");
    // Caller-materialised traces have no stable identity across
    // process relaunches, so these points run checkpoint-free; use
    // submit() for resumable sweeps.
    RetryPolicy policy;
    policy.retries = retries;
    policy.label = "trace";
    policy.jitterSeed = configFingerprint(cfg);
    return deferRetry(
        [cfg, trace = std::move(trace)](unsigned attempt) {
            SystemConfig c = cfg;
            c.oram.fault.seed += attempt;
            obs::applyEnv(c.obs);
            if (c.obs.any() && c.obs.label.empty())
                c.obs.label =
                    obs::makeLabel("trace", configFingerprint(c));
            return runSystem(c, *trace);
        },
        std::move(policy));
}

std::vector<RunMetrics>
ExperimentRunner::runAll(const std::vector<ExperimentPoint> &points)
{
    std::vector<Future<RunMetrics>> futures;
    futures.reserve(points.size());
    for (const ExperimentPoint &p : points)
        futures.push_back(
            submit(p.cfg, p.workload, p.misses, p.seed, p.retries));
    std::vector<RunMetrics> results;
    results.reserve(futures.size());
    for (const Future<RunMetrics> &f : futures)
        // sblint:allow-next-line(unbounded-wait): every submitted task sets a value or an error (the worker wraps the body in a catch-all); futures cannot leak unresolved
        results.push_back(f.get());
    return results;
}

unsigned
ExperimentRunner::defaultThreads()
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    // sblint:allow-next-line(ambient-nondeterminism): thread-count knob changes scheduling only; results are thread-count-invariant by construction
    if (const char *env = std::getenv("SB_BENCH_THREADS")) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0' || v == 0 || v > 4096) {
            SB_WARN("ignoring invalid SB_BENCH_THREADS='%s' "
                    "(want an integer in [1, 4096]); using %u",
                    env, hw);
            return hw;
        }
        return static_cast<unsigned>(v);
    }
    return hw;
}

ExperimentRunner &
ExperimentRunner::global()
{
    static ExperimentRunner runner(defaultThreads());
    return runner;
}

} // namespace sboram
