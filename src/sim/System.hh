/**
 * @file
 * Whole-system simulation: workload → CPU model → (timing-protected)
 * ORAM controller or insecure memory → DDR3 — and the metric
 * decomposition the paper's figures report.
 *
 * Total execution time = data access time + DRI (paper Eq. 1):
 * data access time is the time the memory system spends serving real
 * (data) ORAM requests; everything else — compute gaps the controller
 * sits idle through and dummy timing-protection requests — is the
 * Data Request Interval.
 */

#ifndef SBORAM_SIM_SYSTEM_HH
#define SBORAM_SIM_SYSTEM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/Checkpoint.hh"
#include "common/Types.hh"
#include "cpu/CpuModel.hh"
#include "obs/ObsConfig.hh"
#include "mem/DramModel.hh"
#include "mem/DramTiming.hh"
#include "oram/OramConfig.hh"
#include "oram/Stash.hh"
#include "oram/TinyOram.hh"
#include "shadow/ShadowPolicy.hh"
#include "workload/Workload.hh"

namespace sboram {

/** Which memory system backs the CPU. */
enum class Scheme : std::uint8_t
{
    Insecure,  ///< Plain DRAM, no protection.
    Tiny,      ///< Tiny ORAM baseline.
    Shadow,    ///< Tiny ORAM + Shadow Block duplication.
};

/** Which CPU front-end issues the trace. */
enum class CpuKind : std::uint8_t { InOrder, OutOfOrder };

/** Everything needed to run one experiment point. */
struct SystemConfig
{
    Scheme scheme = Scheme::Tiny;
    OramConfig oram;
    ShadowConfig shadow;
    DramTiming dramTiming = DramTiming::ddr3_1333();
    DramGeometry dramGeometry;

    bool timingProtection = false;
    /** Fixed request rate in cycles; 0 = auto from path latency. */
    Cycles tpInterval = 0;
    /** Classify long idle gaps as virtual dummy requests so dynamic
     *  partitioning works without timing protection (DESIGN.md). */
    bool virtualDummies = true;

    CpuKind cpu = CpuKind::InOrder;
    unsigned cores = 4;   ///< For OutOfOrder.
    unsigned window = 8;  ///< Reorder window per core.

    /** Record each miss's data-forward time (Fig. 6 needs the
     *  per-miss execution-time curve). */
    bool recordPerMiss = false;

    /**
     * Opt-in invariant watchdog: run the full InvariantChecker walk
     * every N served ORAM requests and throw
     * InvariantViolationError on the first violation.  0 disables it
     * (the walk is O(tree), so this is for debugging and fault
     * studies, not performance sweeps).
     */
    std::uint64_t watchdogInterval = 0;

    /**
     * Write a crash-consistent snapshot every N served memory
     * requests when a CheckpointSession is attached (see the
     * three-argument runSystem).  0 = snapshot only on stop signals.
     * Not part of the point fingerprint: any cadence resumes to the
     * same final metrics.
     */
    std::uint64_t checkpointInterval = 0;

    /**
     * Test seam: after N memory requests, write a final snapshot (if
     * a session is attached) and throw InterruptedError — a
     * deterministic stand-in for SIGKILL/SIGINT arriving mid-run.
     * 0 disables.  Not part of the point fingerprint.
     */
    std::uint64_t interruptAfterAccesses = 0;

    /**
     * Tier-3 of the recovery ladder: when a CorruptionError escapes
     * the in-ORAM tiers and a CheckpointSession is attached, restore
     * the latest valid snapshot generation and deterministically
     * replay the cursor (with the fault schedule shifted to its next
     * realization) instead of dying — up to this many times per run.
     * 0 (default) disables auto-rollback and preserves the historic
     * fail-fast behavior.  Part of the point fingerprint: rollbacks
     * change the fault realization and hence the final counters.
     */
    unsigned maxAutoRollbacks = 0;

    /**
     * Observability (DESIGN.md §9): event tracing, interval-sampled
     * metrics, heartbeat.  All off by default; the ExperimentRunner
     * merges the SB_OBS_* environment knobs in.  Not part of the
     * point fingerprint — observing a run never changes its results.
     */
    obs::ObsConfig obs;
};

/** Everything the benches need from one run. */
struct RunMetrics
{
    Cycles execTime = 0;
    double dataAccessTime = 0.0;  ///< Eq. 1 first term.
    double driTime = 0.0;         ///< Eq. 1 second term.
    std::uint64_t requests = 0;
    std::uint64_t dummyRequests = 0;
    std::uint64_t stashHits = 0;
    std::uint64_t shadowStashHits = 0;
    std::uint64_t shadowForwards = 0;
    std::uint64_t pathReads = 0;
    std::uint64_t shadowsWritten = 0;
    double onChipHitRate = 0.0;  ///< Fig. 16.
    PicoJoules energy = 0.0;     ///< Fig. 12.
    std::uint64_t stashPeakReal = 0;
    std::uint64_t stashOverflows = 0;
    double avgForwardLevel = 0.0;
    unsigned finalPartitionLevel = 0;
    /** Fault-injection accounting (zero when injection is off). */
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsDetected = 0;
    std::uint64_t faultsRecovered = 0;
    std::uint64_t faultsUnrecoverable = 0;
    /** Recovery-ladder accounting (zero when the ladder is off). */
    std::uint64_t slotsQuarantined = 0;    ///< Tier-1 quarantines.
    std::uint64_t quarantineEvacuations = 0;
    std::uint64_t degradedEntries = 0;     ///< Tier-2 mode entries.
    std::uint64_t degradedTicks = 0;       ///< Accesses spent degraded.
    std::uint64_t emergencyEvictions = 0;
    std::uint64_t rollbacks = 0;           ///< Tier-3 auto-rollbacks.
    /** Trace records replayed across all rollbacks (MTTR numerator:
     *  replayedAccesses / rollbacks = mean replay distance). */
    std::uint64_t replayedAccesses = 0;
    /** Per-miss forward times, in trace order (recordPerMiss). */
    std::vector<Cycles> missRetireTimes;
};

/** Build an LLC-miss trace for a named SPEC-like workload. */
std::vector<LlcMissRecord> makeTrace(const std::string &workload,
                                     std::uint64_t misses,
                                     std::uint64_t seed);

/**
 * Run one experiment point: the given trace through the configured
 * CPU and memory system.  For OutOfOrder CPUs the trace is replicated
 * per core with per-core address offsets (the paper duplicates the
 * benchmark across cores).
 */
RunMetrics runSystem(const SystemConfig &cfg,
                     const std::vector<LlcMissRecord> &trace);

/**
 * Checkpoint-aware variant.  With a non-null @p session the run first
 * tries to resume from the newest valid snapshot (falling back to the
 * previous generation, then to a clean start), then periodically
 * persists its full state per SystemConfig::checkpointInterval and on
 * stop signals.  A resumed run produces metrics bit-identical to an
 * uninterrupted one.  Throws InterruptedError after the final
 * snapshot when a stop was requested.
 */
RunMetrics runSystem(const SystemConfig &cfg,
                     const std::vector<LlcMissRecord> &trace,
                     ckpt::CheckpointSession *session);

/** Convenience: generate the trace and run. */
RunMetrics runWorkload(const SystemConfig &cfg,
                       const std::string &workload,
                       std::uint64_t misses, std::uint64_t seed);

/**
 * 64-bit fingerprint over every semantic field of @p cfg — the
 * fields that determine the run's outcome.  checkpointInterval,
 * interruptAfterAccesses and obs are deliberately excluded so a
 * resumed run (different cadence, different interruption point,
 * different observability) addresses the same checkpoint files.
 */
std::uint64_t configFingerprint(const SystemConfig &cfg);

/** Serialize final RunMetrics (bit-exact doubles) for .done markers. */
void saveRunMetrics(ckpt::Serializer &out, const RunMetrics &m);
RunMetrics loadRunMetrics(ckpt::Deserializer &in);

} // namespace sboram

#endif // SBORAM_SIM_SYSTEM_HH
