#include "System.hh"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>

#include "baseline/InsecureMemory.hh"
#include "common/Errors.hh"
#include "common/Logging.hh"
#include "mem/EnergyModel.hh"
#include "obs/FlightRecorder.hh"
#include "obs/MetricNames.hh"
#include "obs/Observer.hh"
#include "security/InvariantChecker.hh"
#include "workload/SpecProfiles.hh"

namespace sboram {

namespace {

/** Memory port wrapping the insecure DRAM system. */
class InsecurePort : public MemoryPort
{
  public:
    explicit InsecurePort(InsecureMemory &mem) : _mem(mem) {}

    MemoryReply
    request(Addr addr, Op op, Cycles issueTime) override
    {
        InsecureMemory::Result r = _mem.access(addr, op, issueTime);
        _busy += r.completeAt -
                 std::max(issueTime, _lastComplete);
        _lastComplete = r.completeAt;
        return MemoryReply{r.forwardAt};
    }

    double busyTime() const { return static_cast<double>(_busy); }

    void
    saveState(ckpt::Serializer &out) const
    {
        out.u64(_busy);
        out.u64(_lastComplete);
        out.u64(_mem.freeAt());
    }

    void
    loadState(ckpt::Deserializer &in)
    {
        _busy = in.u64();
        _lastComplete = in.u64();
        _mem.restoreFreeAt(in.u64());
    }

  private:
    InsecureMemory &_mem;
    Cycles _busy = 0;
    Cycles _lastComplete = 0;
};

/**
 * Memory port wrapping the ORAM controller, including the
 * constant-rate timing protection of Fletcher et al. [16]: real or
 * dummy ORAM requests launch on a fixed-interval slot grid; stash
 * hits consume no slot.
 */
class OramPort : public MemoryPort
{
  public:
    OramPort(TinyOram &oram, bool timingProtection, Cycles interval,
             bool virtualDummies, std::uint64_t watchdogInterval)
        : _oram(oram), _tp(timingProtection), _interval(interval),
          _virtualDummies(virtualDummies),
          _watchdogInterval(watchdogInterval)
    {
        SB_ASSERT(!_tp || _interval > 0, "TP needs an interval");
        _idleThreshold = interval > 0 ? interval : 1;
    }

    MemoryReply
    request(Addr addr, Op op, Cycles issueTime) override
    {
        if (_watchdogInterval &&
            ++_sinceWatchdog >= _watchdogInterval) {
            _sinceWatchdog = 0;
            enforceInvariants(_oram, _oram.stats().requests);
        }

        if (_oram.wouldHitStash(addr, op)) {
            AccessResult r = _oram.access(addr, op, issueTime);
            return MemoryReply{r.forwardAt};
        }

        Cycles start = issueTime;
        if (_tp) {
            // Fire dummy requests in every elapsed slot, then place
            // this request on the next slot boundary.
            while (_nextSlot < issueTime) {
                fireDummy(_nextSlot);
                _nextSlot += _interval;
            }
            start = _nextSlot;
            _nextSlot += _interval;
        } else if (_virtualDummies) {
            // No timing protection: let the dynamic-partitioning DRI
            // counter see long idle gaps as if they were dummies.
            if (_lastComplete != 0 &&
                issueTime > _lastComplete + _idleThreshold) {
                const Cycles gap = issueTime - _lastComplete;
                const std::uint64_t n =
                    std::min<std::uint64_t>(gap / _idleThreshold, 4);
                for (std::uint64_t i = 0; i < n; ++i)
                    _oram.policy().onRequestClassified(true);
            }
        }

        AccessResult r = _oram.access(addr, op, start);
        _dataBusy += r.completeAt - r.start;
        _lastComplete = r.completeAt;
        return MemoryReply{r.forwardAt};
    }

    double dataBusyTime() const { return static_cast<double>(_dataBusy); }
    std::uint64_t dummiesFired() const { return _dummies; }

    void
    saveState(ckpt::Serializer &out) const
    {
        out.u64(_sinceWatchdog);
        out.u64(_nextSlot);
        out.u64(_lastComplete);
        out.u64(_dataBusy);
        out.u64(_dummies);
    }

    void
    loadState(ckpt::Deserializer &in)
    {
        _sinceWatchdog = in.u64();
        _nextSlot = in.u64();
        _lastComplete = in.u64();
        _dataBusy = in.u64();
        _dummies = in.u64();
    }

  private:
    void
    fireDummy(Cycles slot)
    {
        _oram.dummyAccess(slot);
        ++_dummies;
    }

    TinyOram &_oram;
    bool _tp;
    Cycles _interval;
    bool _virtualDummies;
    std::uint64_t _watchdogInterval;
    std::uint64_t _sinceWatchdog = 0;
    Cycles _idleThreshold;
    Cycles _nextSlot = 0;
    Cycles _lastComplete = 0;
    Cycles _dataBusy = 0;
    std::uint64_t _dummies = 0;
};

std::vector<std::vector<LlcMissRecord>>
perCoreTraces(const std::vector<LlcMissRecord> &trace, unsigned cores,
              std::uint64_t dataBlocks)
{
    // The paper duplicates the benchmark, one task per core; each
    // task owns a distinct slice of the (oblivious) address space.
    std::vector<std::vector<LlcMissRecord>> result(cores, trace);
    const std::uint64_t stride = dataBlocks / cores;
    for (unsigned c = 0; c < cores; ++c) {
        for (LlcMissRecord &rec : result[c])
            rec.addr = (rec.addr % stride) + stride * c;
    }
    return result;
}

} // namespace

std::vector<LlcMissRecord>
makeTrace(const std::string &workload, std::uint64_t misses,
          std::uint64_t seed)
{
    WorkloadGenerator gen(specProfile(workload), seed);
    return gen.generate(misses);
}

RunMetrics
runSystem(const SystemConfig &cfg,
          const std::vector<LlcMissRecord> &rawTrace)
{
    return runSystem(cfg, rawTrace, nullptr);
}

RunMetrics
runSystem(const SystemConfig &cfg,
          const std::vector<LlcMissRecord> &rawTrace,
          ckpt::CheckpointSession *session)
{
    // Fold workload addresses into the configured data space (the
    // profiles target the default 2^20-block ORAM; smaller studies
    // reuse them scaled down).
    std::vector<LlcMissRecord> trace = rawTrace;
    for (LlcMissRecord &rec : trace)
        rec.addr %= cfg.oram.dataBlocks;

    RunMetrics m;
    DramModel dram(cfg.dramTiming, cfg.dramGeometry);
    EnergyModel energy(DramEnergy{}, cfg.dramGeometry.channels);

    // Observability hub: null unless the config opts in, so every
    // hook below stays a single branch on a cold pointer.
    std::unique_ptr<obs::RunObserver> observer;
    obs::RunObserver *obsPtr = nullptr;
    obs::Counter *ckptCounter = nullptr;
    if (cfg.obs.any()) {
        observer = std::make_unique<obs::RunObserver>(cfg.obs);
        obsPtr = observer.get();
        obsPtr->setTotalAccesses(
            trace.size() *
            (cfg.cpu == CpuKind::OutOfOrder ? cfg.cores : 1));
    }

    CpuCursor cursor;

    auto runCpu = [&](MemoryPort &port,
                      const CpuStepHook &hook) -> CpuRunResult {
        if (cfg.cpu == CpuKind::InOrder) {
            InOrderCpu cpu;
            return cpu.run(trace, port, cursor, hook);
        }
        OooCpu cpu(cfg.cores, cfg.window);
        return cpu.run(
            perCoreTraces(trace, cfg.cores, cfg.oram.dataBlocks),
            port, cursor, hook);
    };

    // The checkpoint hook fires after every completed memory request:
    // snapshot when the cadence says so, and on a stop request write
    // one final snapshot and unwind with InterruptedError.  With no
    // session and no interrupt seam the hook is empty and the CPU
    // models skip it entirely.
    using SaveAllFn = std::function<void(ckpt::SnapshotWriter &)>;
    std::uint64_t lastSnapshotAt = 0;
    auto makeHook = [&](SaveAllFn saveAll,
                        std::function<bool()> scrub) -> CpuStepHook {
        if (session == nullptr && cfg.interruptAfterAccesses == 0 &&
            obsPtr == nullptr)
            return CpuStepHook{};
        return [&cfg, session, &lastSnapshotAt, saveAll, scrub, obsPtr,
                &ckptCounter](const CpuCursor &cur) {
            if (obsPtr != nullptr)
                obsPtr->onAccessBoundary(cur.accessesDone,
                                         cur.partial.finishTime,
                                         cur.lastIssue,
                                         cur.lastForward);
            const bool stopping =
                ckpt::stopRequested() ||
                (cfg.interruptAfterAccesses != 0 &&
                 cur.accessesDone >= cfg.interruptAfterAccesses);
            const bool due =
                session != nullptr && cfg.checkpointInterval != 0 &&
                cur.accessesDone - lastSnapshotAt >=
                    cfg.checkpointInterval;
            if (!stopping && !due)
                return;
            if (session != nullptr) {
                // Scrub-before-commit: a fault can sit latent between
                // injection and the read that detects it, and a
                // snapshot taken inside that window would hand tier-3
                // rollback a poisoned restore point.  Verify (and
                // shadow-heal) the stored state first; if an
                // unhealable corruption is present, skip this cadence
                // commit and keep the last clean generation.
                if (scrub && !scrub()) {
                    lastSnapshotAt = cur.accessesDone;
                    if (obs::TraceSession *t =
                            obsPtr ? obsPtr->trace() : nullptr)
                        t->instant(obs::kTrackCheckpoint,
                                   "checkpoint_skipped",
                                   cur.partial.finishTime);
                } else {
                    ckpt::SnapshotWriter writer;
                    saveAll(writer);
                    session->commitSnapshot(writer);
                    lastSnapshotAt = cur.accessesDone;
                    if (ckptCounter != nullptr)
                        ckptCounter->add();
                    if (obs::TraceSession *t =
                            obsPtr ? obsPtr->trace() : nullptr)
                        t->instant(obs::kTrackCheckpoint, "checkpoint",
                                   cur.partial.finishTime);
                }
            }
            if (stopping)
                throw InterruptedError(
                    "run stopped after " +
                        std::to_string(cur.accessesDone) +
                        " accesses (final checkpoint written)",
                    cur.accessesDone);
        };
    };

    struct RecordingPort : MemoryPort
    {
        MemoryPort *inner = nullptr;
        std::vector<Cycles> *out = nullptr;

        MemoryReply
        request(Addr addr, Op op, Cycles issueTime) override
        {
            MemoryReply r = inner->request(addr, op, issueTime);
            out->push_back(r.forwardAt);
            return r;
        }
    };
    RecordingPort recorder;
    auto maybeRecord = [&](MemoryPort &inner) -> MemoryPort & {
        if (!cfg.recordPerMiss)
            return inner;
        recorder.inner = &inner;
        recorder.out = &m.missRetireTimes;
        return recorder;
    };

    if (cfg.scheme == Scheme::Insecure) {
        InsecureMemory mem(dram);
        InsecurePort port(mem);
        if (obsPtr != nullptr) {
            if (cfg.obs.metrics)
                ckptCounter = &obsPtr->registry().counter(
                    obs::kMetricCheckpoints);
            obsPtr->sealRegistry();
        }
        auto saveAll = [&](ckpt::SnapshotWriter &w) {
            cursor.saveState(w.section(ckpt::kSectionCpu));
            port.saveState(w.section(ckpt::kSectionMem));
            dram.saveState(w.section(ckpt::kSectionDram));
            ckpt::Serializer &met = w.section(ckpt::kSectionMetrics);
            met.u64(m.rollbacks);
            met.u64(m.replayedAccesses);
            met.vecU64(m.missRetireTimes);
            if (obsPtr != nullptr)
                obsPtr->saveState(w.section(ckpt::kSectionObs));
        };
        if (session != nullptr) {
            if (auto reader = session->loadLatest()) {
                // Fetch every section first so a structurally wrong
                // snapshot is rejected before any state mutates.
                auto dCpu = reader->section(ckpt::kSectionCpu);
                auto dMem = reader->section(ckpt::kSectionMem);
                auto dDram = reader->section(ckpt::kSectionDram);
                auto dMet = reader->section(ckpt::kSectionMetrics);
                cursor.loadState(dCpu);
                port.loadState(dMem);
                dram.loadState(dDram);
                m.rollbacks = dMet.u64();
                m.replayedAccesses = dMet.u64();
                m.missRetireTimes = dMet.vecU64();
                if (obsPtr != nullptr &&
                    reader->hasSection(ckpt::kSectionObs)) {
                    auto dObs = reader->section(ckpt::kSectionObs);
                    obsPtr->loadState(dObs);
                }
                lastSnapshotAt = cursor.accessesDone;
            }
        }
        CpuRunResult r =
            runCpu(maybeRecord(port), makeHook(saveAll, {}));
        m.execTime = r.finishTime;
        m.dataAccessTime = port.busyTime();
        m.driTime = static_cast<double>(m.execTime) - m.dataAccessTime;
        m.requests = r.reads + r.writes;
        m.energy = energy.totalEnergy(dram.stats(), m.execTime);
        if (obsPtr != nullptr) {
            obsPtr->finalSample(cursor.accessesDone, m.execTime);
            obsPtr->close();
        }
        return m;
    }

    std::unique_ptr<DuplicationPolicy> policy;
    ShadowPolicy *shadowPolicy = nullptr;
    if (cfg.scheme == Scheme::Shadow) {
        const unsigned leafLevel = cfg.oram.deriveLevels();
        auto sp = std::make_unique<ShadowPolicy>(cfg.shadow,
                                                 leafLevel);
        shadowPolicy = sp.get();
        policy = std::move(sp);
    }

    TinyOram oram(cfg.oram, dram, std::move(policy));

    // Always-on flight recorder for the recovery ladder: quarantines
    // and degraded transitions from the controller, rollbacks and
    // corruption rethrows from the tier-3 loop below.
    obs::FlightRecorder flight;
    std::string flightLabel = cfg.obs.label;
    if (flightLabel.empty()) {
        char labelBuf[24];
        std::snprintf(labelBuf, sizeof(labelBuf), "sys-%016llx",
                      static_cast<unsigned long long>(
                          configFingerprint(cfg)));
        flightLabel = labelBuf;
    }
    oram.setFlightRecorder(&flight);

    Cycles interval = cfg.tpInterval;
    if (cfg.timingProtection && interval == 0) {
        // Auto-size: one slot per average request service time
        // (path read plus the amortised eviction read+write).
        const Cycles path = oram.estimatePathReadLatency();
        interval = path +
                   2 * path / cfg.oram.evictionRate;
    }
    if (!cfg.timingProtection && interval == 0)
        interval = oram.estimatePathReadLatency();

    OramPort port(oram, cfg.timingProtection, interval,
                  cfg.virtualDummies, cfg.watchdogInterval);

    if (obsPtr != nullptr) {
        oram.setObserver(obsPtr);
        if (cfg.obs.metrics) {
            obs::MetricRegistry &reg = obsPtr->registry();
            ckptCounter = &reg.counter(obs::kMetricCheckpoints);
            // Controller counters are polled as gauges: the ORAM hot
            // path keeps its existing OramStats increments and pays
            // nothing extra per access.
            reg.gauge(obs::kMetricRequests, [&oram] {
                return static_cast<double>(oram.stats().requests);
            });
            reg.gauge(obs::kMetricStashHits, [&oram] {
                return static_cast<double>(oram.stats().stashHits);
            });
            reg.gauge(obs::kMetricPathReads, [&oram] {
                return static_cast<double>(oram.stats().pathReads);
            });
            reg.gauge(obs::kMetricShadowForwards, [&oram] {
                return static_cast<double>(
                    oram.stats().shadowForwards);
            });
            reg.gauge(obs::kMetricShadowsWritten, [&oram] {
                return static_cast<double>(
                    oram.stats().shadowsWritten);
            });
            reg.gauge(obs::kMetricFaultsDetected, [&oram] {
                return static_cast<double>(
                    oram.stats().faultsDetected);
            });
            reg.gauge(obs::kMetricFaultsRecovered, [&oram] {
                return static_cast<double>(
                    oram.stats().faultsRecovered);
            });
            reg.gauge(obs::kMetricQuarantinedSlots, [&oram] {
                return static_cast<double>(
                    oram.health().quarantinedCount());
            });
            reg.gauge(obs::kMetricDegraded, [&oram] {
                return oram.health().degraded() ? 1.0 : 0.0;
            });
            reg.gauge(obs::kMetricDegradedEntries, [&oram] {
                return static_cast<double>(
                    oram.stats().degradedEntries);
            });
            reg.gauge(obs::kMetricRollbacks, [&m] {
                return static_cast<double>(m.rollbacks);
            });
            reg.gauge(obs::kMetricStashReal, [&oram] {
                return static_cast<double>(oram.stash().realCount());
            });
            reg.gauge(obs::kMetricStashShadow, [&oram] {
                return static_cast<double>(
                    oram.stash().shadowCount());
            });
            reg.gauge(obs::kMetricStashHitRate, [&oram] {
                const OramStats &s = oram.stats();
                return s.requests
                    ? static_cast<double>(s.stashHits) /
                          static_cast<double>(s.requests)
                    : 0.0;
            });
            reg.gauge(obs::kMetricShadowHitDepth, [&oram] {
                // Mean levels advanced per shadow-forwarded read:
                // how deep in the path the winning shadow copy sat.
                const OramStats &s = oram.stats();
                return s.shadowForwards
                    ? static_cast<double>(s.levelsAdvanced) /
                          static_cast<double>(s.shadowForwards)
                    : 0.0;
            });
            if (shadowPolicy != nullptr) {
                reg.gauge(obs::kMetricPartitionLevel,
                          [shadowPolicy] {
                    return static_cast<double>(
                        shadowPolicy->partitionLevel());
                });
                reg.gauge(obs::kMetricDriCounter, [shadowPolicy] {
                    return static_cast<double>(
                        shadowPolicy->driCounter());
                });
            }
        }
        obsPtr->sealRegistry();
    }

    auto saveAll = [&](ckpt::SnapshotWriter &w) {
        cursor.saveState(w.section(ckpt::kSectionCpu));
        port.saveState(w.section(ckpt::kSectionPort));
        oram.saveState(w.section(ckpt::kSectionOram));
        if (shadowPolicy != nullptr)
            shadowPolicy->saveState(w.section(ckpt::kSectionPolicy));
        dram.saveState(w.section(ckpt::kSectionDram));
        ckpt::Serializer &met = w.section(ckpt::kSectionMetrics);
        met.u64(m.rollbacks);
        met.u64(m.replayedAccesses);
        met.vecU64(m.missRetireTimes);
        flight.saveState(w.section(ckpt::kSectionReqObs));
        if (obsPtr != nullptr)
            obsPtr->saveState(w.section(ckpt::kSectionObs));
    };
    auto restoreAll = [&](ckpt::SnapshotReader &reader) {
        // Fetch every section first so a structurally wrong snapshot
        // is rejected before any state mutates.
        auto dCpu = reader.section(ckpt::kSectionCpu);
        auto dPort = reader.section(ckpt::kSectionPort);
        auto dOram = reader.section(ckpt::kSectionOram);
        auto dDram = reader.section(ckpt::kSectionDram);
        auto dMet = reader.section(ckpt::kSectionMetrics);
        if (shadowPolicy != nullptr) {
            auto dPol = reader.section(ckpt::kSectionPolicy);
            shadowPolicy->loadState(dPol);
        }
        cursor.loadState(dCpu);
        port.loadState(dPort);
        oram.loadState(dOram);
        dram.loadState(dDram);
        m.rollbacks = dMet.u64();
        m.replayedAccesses = dMet.u64();
        m.missRetireTimes = dMet.vecU64();
        if (reader.hasSection(ckpt::kSectionReqObs)) {
            auto dReq = reader.section(ckpt::kSectionReqObs);
            flight.loadState(dReq);
        }
        if (obsPtr != nullptr &&
            reader.hasSection(ckpt::kSectionObs)) {
            auto dObs = reader.section(ckpt::kSectionObs);
            obsPtr->loadState(dObs);
        }
        lastSnapshotAt = cursor.accessesDone;
    };
    // Auto-rollback's last line of defense: a fault can corrupt a
    // stored ciphertext long before the next read detects it, so a
    // cadence snapshot taken in that window captures the poison and
    // rolling back to it deterministically reproduces the identical
    // failure.  Keep the pristine access-0 state as an in-memory
    // image (captured before any resume mutates it) so the ladder can
    // escalate to a clean restart from the trace start.
    std::vector<std::uint8_t> pristineImage;
    if (session != nullptr && cfg.maxAutoRollbacks > 0) {
        ckpt::SnapshotWriter writer;
        saveAll(writer);
        pristineImage = writer.finish(0, 0);
    }
    bool resumed = false;
    if (session != nullptr) {
        if (auto reader = session->loadLatest()) {
            restoreAll(*reader);
            resumed = true;
        }
    }
    if (session != nullptr && cfg.maxAutoRollbacks > 0 && !resumed) {
        // Auto-rollback needs a restore point even for corruption
        // that strikes before the first cadence snapshot: commit the
        // pristine access-0 state up front.
        ckpt::SnapshotWriter writer;
        saveAll(writer);
        session->commitSnapshot(writer);
        if (ckptCounter != nullptr)
            ckptCounter->add();
    }

    // Tier-3 of the recovery ladder: a CorruptionError that escaped
    // the in-ORAM tiers rolls the whole simulation back to the latest
    // valid snapshot generation and deterministically replays the
    // cursor — with the fault schedule shifted to its next
    // realization, since replaying the identical schedule would
    // re-corrupt the identical slot — instead of tearing the run
    // down.  Bounded attempts; exhaustion rethrows and the fatal
    // classifier reports it exactly as before.
    unsigned rollbacksUsed = 0;
    std::uint64_t lastFailedAt = std::uint64_t(-1);
    // Only auto-rollback sessions pay for the pre-commit patrol
    // scrub; plain checkpointing tolerates latent corruption in a
    // snapshot because it never restores one mid-run.
    std::function<bool()> scrubFn;
    if (session != nullptr && cfg.maxAutoRollbacks > 0)
        scrubFn = [&oram] { return oram.scrubStorage(); };
    CpuRunResult r;
    for (;;) {
        try {
            r = runCpu(maybeRecord(port), makeHook(saveAll, scrubFn));
            break;
        } catch (const CorruptionError &) {
            flight.record(cursor.partial.finishTime,
                          obs::FlightKind::Corruption,
                          cursor.accessesDone, rollbacksUsed);
            if (session == nullptr || cfg.maxAutoRollbacks == 0 ||
                rollbacksUsed >= cfg.maxAutoRollbacks) {
                // Fatal: hand the ring to the panic path before the
                // rethrow unwinds this frame.
                const std::string dump =
                    flight.renderJson(flightLabel);
                obs::publishFlightDump(flightLabel, dump);
                obs::notePanicFlight(dump);
                throw;
            }
            const std::uint64_t failedAt = cursor.accessesDone;
            // Escalation within tier 3: when the replay reproduces
            // the failure at the same access, the restored snapshot
            // itself carries the failure (a latent corruption the
            // pre-commit scrub could not heal, or a serialized stuck
            // cell) — abandon the cadence snapshots and restart clean
            // from the trace start.
            const bool noProgress = failedAt == lastFailedAt;
            std::unique_ptr<ckpt::SnapshotReader> reader;
            if (!noProgress)
                reader = session->loadLatest();
            if (!reader) {
                if (pristineImage.empty()) {
                    const std::string dump =
                        flight.renderJson(flightLabel);
                    obs::publishFlightDump(flightLabel, dump);
                    obs::notePanicFlight(dump);
                    throw;
                }
                reader = std::make_unique<ckpt::SnapshotReader>(
                    pristineImage);
            }
            // The Metrics section in the restored image predates this
            // ladder's own activity; carry the live counters across
            // the restore so rollbacks are never undercounted.
            const std::uint64_t priorRollbacks = m.rollbacks;
            const std::uint64_t priorReplayed = m.replayedAccesses;
            restoreAll(*reader);
            lastFailedAt = failedAt;
            ++rollbacksUsed;
            m.rollbacks = priorRollbacks + 1;
            m.replayedAccesses =
                priorReplayed + (failedAt - cursor.accessesDone);
            oram.shiftFaultRealization(rollbacksUsed);
            // The restore just replaced the ring with the snapshot's;
            // record the rollback after it so the event survives.
            flight.record(cursor.partial.finishTime,
                          obs::FlightKind::AutoRollback,
                          rollbacksUsed, failedAt);
            if (obs::TraceSession *t =
                    obsPtr ? obsPtr->trace() : nullptr)
                t->instant(obs::kTrackCheckpoint, "auto_rollback",
                           cursor.partial.finishTime);
        }
    }

    m.execTime = r.finishTime;
    m.dataAccessTime = port.dataBusyTime();
    m.driTime = static_cast<double>(m.execTime) - m.dataAccessTime;
    if (m.driTime < 0.0)
        m.driTime = 0.0;

    const OramStats &os = oram.stats();
    m.requests = os.requests;
    m.dummyRequests = os.dummyAccesses;
    m.stashHits = os.stashHits;
    m.shadowStashHits = os.shadowStashHits;
    m.shadowForwards = os.shadowForwards;
    m.pathReads = os.pathReads;
    m.shadowsWritten = os.shadowsWritten;
    m.onChipHitRate = os.requests
        ? static_cast<double>(os.onChipHits) /
          static_cast<double>(os.requests)
        : 0.0;
    m.energy = energy.totalEnergy(dram.stats(), m.execTime);
    m.stashPeakReal = oram.stash().stats().peakReal;
    m.stashOverflows = oram.stash().stats().overflowEvents;
    m.faultsInjected = os.faultsInjected;
    m.faultsDetected = os.faultsDetected;
    m.faultsRecovered = os.faultsRecovered;
    m.faultsUnrecoverable = os.faultsUnrecoverable;
    m.slotsQuarantined = os.slotsQuarantined;
    m.quarantineEvacuations = os.quarantineEvacuations;
    m.degradedEntries = os.degradedEntries;
    m.degradedTicks = os.degradedTicks;
    m.emergencyEvictions = os.emergencyEvictions;
    // m.rollbacks / m.replayedAccesses are maintained by the tier-3
    // loop above (and restored from the snapshot on resume).
    if (shadowPolicy)
        m.finalPartitionLevel = shadowPolicy->partitionLevel();
    // Empty rings stay out of the artifact: most batch points never
    // touch the recovery ladder.
    if (!flight.empty())
        obs::publishFlightDump(flightLabel,
                               flight.renderJson(flightLabel));
    if (obsPtr != nullptr) {
        obsPtr->finalSample(cursor.accessesDone, m.execTime);
        obsPtr->close();
    }
    return m;
}

RunMetrics
runWorkload(const SystemConfig &cfg, const std::string &workload,
            std::uint64_t misses, std::uint64_t seed)
{
    return runSystem(cfg, makeTrace(workload, misses, seed));
}

std::uint64_t
configFingerprint(const SystemConfig &cfg)
{
    ckpt::Serializer s;
    s.u8(static_cast<std::uint8_t>(cfg.scheme));

    const OramConfig &o = cfg.oram;
    s.u64(o.dataBlocks);
    s.u64(o.blockBytes);
    s.u32(o.slotsPerBucket);
    s.u32(o.evictionRate);
    s.f64(o.utilization);
    s.u32(o.stashCapacity);
    s.u8(static_cast<std::uint8_t>(o.posMapMode));
    s.u64(o.plbBytes);
    s.u64(o.onChipPosMapEntries);
    s.u32(o.treetopLevels);
    s.u8(o.xorCompression ? 1 : 0);
    s.u8(o.payloadEnabled ? 1 : 0);
    s.u8(o.serveFromShadow ? 1 : 0);
    s.u8(o.recirculateShadows ? 1 : 0);
    s.u64(o.aesLatency);
    s.u64(o.stashHitLatency);
    s.u64(o.onChipLatency);
    s.f64(o.fault.rate);
    s.u64(o.fault.seed);
    s.u8(o.fault.bitFlips ? 1 : 0);
    s.u8(o.fault.droppedWrites ? 1 : 0);
    s.u8(o.fault.stuckBits ? 1 : 0);
    s.u32(o.fault.stuckWrites);
    s.u8(static_cast<std::uint8_t>(o.fault.onUnrecoverable));
    s.u32(o.fault.burstEvery);
    s.u32(o.fault.burstLen);
    s.u32(o.fault.subtreeLevels);
    s.u64(o.fault.subtreePrefix);
    s.u32(o.health.quarantineThreshold);
    s.u32(o.health.stashHighWatermark);
    s.u32(o.health.stashLowWatermark);
    s.u64(o.seed);

    const ShadowConfig &sh = cfg.shadow;
    s.u8(static_cast<std::uint8_t>(sh.mode));
    s.u32(sh.staticLevel);
    s.u32(sh.driCounterBits);
    s.u32(sh.hotCacheEntries);
    s.u32(sh.hotCacheAssoc);
    s.u8(sh.refillQueues ? 1 : 0);

    const DramTiming &t = cfg.dramTiming;
    s.u64(t.cpuPerMemClk);
    s.u64(t.tCL);
    s.u64(t.tCWL);
    s.u64(t.tRCD);
    s.u64(t.tRP);
    s.u64(t.tRAS);
    s.u64(t.tRC);
    s.u64(t.tCCD);
    s.u64(t.tBURST);
    s.u64(t.tWTR);
    s.u64(t.tRTW);
    s.u64(t.tWR);
    s.u64(t.tRRD);

    const DramGeometry &g = cfg.dramGeometry;
    s.u32(g.channels);
    s.u32(g.ranksPerChannel);
    s.u32(g.banksPerRank);
    s.u64(g.rowBytes);
    s.u64(g.blockBytes);

    s.u8(cfg.timingProtection ? 1 : 0);
    s.u64(cfg.tpInterval);
    s.u8(cfg.virtualDummies ? 1 : 0);
    s.u8(static_cast<std::uint8_t>(cfg.cpu));
    s.u32(cfg.cores);
    s.u32(cfg.window);
    s.u8(cfg.recordPerMiss ? 1 : 0);
    s.u64(cfg.watchdogInterval);
    // maxAutoRollbacks is semantic: a rollback shifts the fault
    // realization, so runs with different budgets can end with
    // different counters.
    s.u32(cfg.maxAutoRollbacks);
    // checkpointInterval, interruptAfterAccesses and obs are
    // intentionally omitted: they change when snapshots happen and
    // what gets recorded about a run, never the result.

    return ckpt::fnv1a(s.buffer().data(), s.buffer().size());
}

void
saveRunMetrics(ckpt::Serializer &out, const RunMetrics &m)
{
    out.u64(m.execTime);
    out.f64(m.dataAccessTime);
    out.f64(m.driTime);
    out.u64(m.requests);
    out.u64(m.dummyRequests);
    out.u64(m.stashHits);
    out.u64(m.shadowStashHits);
    out.u64(m.shadowForwards);
    out.u64(m.pathReads);
    out.u64(m.shadowsWritten);
    out.f64(m.onChipHitRate);
    out.f64(m.energy);
    out.u64(m.stashPeakReal);
    out.u64(m.stashOverflows);
    out.f64(m.avgForwardLevel);
    out.u32(m.finalPartitionLevel);
    out.u64(m.faultsInjected);
    out.u64(m.faultsDetected);
    out.u64(m.faultsRecovered);
    out.u64(m.faultsUnrecoverable);
    out.u64(m.slotsQuarantined);
    out.u64(m.quarantineEvacuations);
    out.u64(m.degradedEntries);
    out.u64(m.degradedTicks);
    out.u64(m.emergencyEvictions);
    out.u64(m.rollbacks);
    out.u64(m.replayedAccesses);
    out.vecU64(m.missRetireTimes);
}

RunMetrics
loadRunMetrics(ckpt::Deserializer &in)
{
    RunMetrics m;
    m.execTime = in.u64();
    m.dataAccessTime = in.f64();
    m.driTime = in.f64();
    m.requests = in.u64();
    m.dummyRequests = in.u64();
    m.stashHits = in.u64();
    m.shadowStashHits = in.u64();
    m.shadowForwards = in.u64();
    m.pathReads = in.u64();
    m.shadowsWritten = in.u64();
    m.onChipHitRate = in.f64();
    m.energy = in.f64();
    m.stashPeakReal = in.u64();
    m.stashOverflows = in.u64();
    m.avgForwardLevel = in.f64();
    m.finalPartitionLevel = in.u32();
    m.faultsInjected = in.u64();
    m.faultsDetected = in.u64();
    m.faultsRecovered = in.u64();
    m.faultsUnrecoverable = in.u64();
    m.slotsQuarantined = in.u64();
    m.quarantineEvacuations = in.u64();
    m.degradedEntries = in.u64();
    m.degradedTicks = in.u64();
    m.emergencyEvictions = in.u64();
    m.rollbacks = in.u64();
    m.replayedAccesses = in.u64();
    m.missRetireTimes = in.vecU64();
    return m;
}

} // namespace sboram
