#include "System.hh"

#include <algorithm>
#include <memory>

#include "baseline/InsecureMemory.hh"
#include "common/Logging.hh"
#include "mem/EnergyModel.hh"
#include "security/InvariantChecker.hh"
#include "workload/SpecProfiles.hh"

namespace sboram {

namespace {

/** Memory port wrapping the insecure DRAM system. */
class InsecurePort : public MemoryPort
{
  public:
    explicit InsecurePort(InsecureMemory &mem) : _mem(mem) {}

    MemoryReply
    request(Addr addr, Op op, Cycles issueTime) override
    {
        InsecureMemory::Result r = _mem.access(addr, op, issueTime);
        _busy += r.completeAt -
                 std::max(issueTime, _lastComplete);
        _lastComplete = r.completeAt;
        return MemoryReply{r.forwardAt};
    }

    double busyTime() const { return static_cast<double>(_busy); }

  private:
    InsecureMemory &_mem;
    Cycles _busy = 0;
    Cycles _lastComplete = 0;
};

/**
 * Memory port wrapping the ORAM controller, including the
 * constant-rate timing protection of Fletcher et al. [16]: real or
 * dummy ORAM requests launch on a fixed-interval slot grid; stash
 * hits consume no slot.
 */
class OramPort : public MemoryPort
{
  public:
    OramPort(TinyOram &oram, bool timingProtection, Cycles interval,
             bool virtualDummies, std::uint64_t watchdogInterval)
        : _oram(oram), _tp(timingProtection), _interval(interval),
          _virtualDummies(virtualDummies),
          _watchdogInterval(watchdogInterval)
    {
        SB_ASSERT(!_tp || _interval > 0, "TP needs an interval");
        _idleThreshold = interval > 0 ? interval : 1;
    }

    MemoryReply
    request(Addr addr, Op op, Cycles issueTime) override
    {
        if (_watchdogInterval &&
            ++_sinceWatchdog >= _watchdogInterval) {
            _sinceWatchdog = 0;
            enforceInvariants(_oram, _oram.stats().requests);
        }

        if (_oram.wouldHitStash(addr, op)) {
            AccessResult r = _oram.access(addr, op, issueTime);
            return MemoryReply{r.forwardAt};
        }

        Cycles start = issueTime;
        if (_tp) {
            // Fire dummy requests in every elapsed slot, then place
            // this request on the next slot boundary.
            while (_nextSlot < issueTime) {
                fireDummy(_nextSlot);
                _nextSlot += _interval;
            }
            start = _nextSlot;
            _nextSlot += _interval;
        } else if (_virtualDummies) {
            // No timing protection: let the dynamic-partitioning DRI
            // counter see long idle gaps as if they were dummies.
            if (_lastComplete != 0 &&
                issueTime > _lastComplete + _idleThreshold) {
                const Cycles gap = issueTime - _lastComplete;
                const std::uint64_t n =
                    std::min<std::uint64_t>(gap / _idleThreshold, 4);
                for (std::uint64_t i = 0; i < n; ++i)
                    _oram.policy().onRequestClassified(true);
            }
        }

        AccessResult r = _oram.access(addr, op, start);
        _dataBusy += r.completeAt - r.start;
        _lastComplete = r.completeAt;
        return MemoryReply{r.forwardAt};
    }

    double dataBusyTime() const { return static_cast<double>(_dataBusy); }
    std::uint64_t dummiesFired() const { return _dummies; }

  private:
    void
    fireDummy(Cycles slot)
    {
        _oram.dummyAccess(slot);
        ++_dummies;
    }

    TinyOram &_oram;
    bool _tp;
    Cycles _interval;
    bool _virtualDummies;
    std::uint64_t _watchdogInterval;
    std::uint64_t _sinceWatchdog = 0;
    Cycles _idleThreshold;
    Cycles _nextSlot = 0;
    Cycles _lastComplete = 0;
    Cycles _dataBusy = 0;
    std::uint64_t _dummies = 0;
};

std::vector<std::vector<LlcMissRecord>>
perCoreTraces(const std::vector<LlcMissRecord> &trace, unsigned cores,
              std::uint64_t dataBlocks)
{
    // The paper duplicates the benchmark, one task per core; each
    // task owns a distinct slice of the (oblivious) address space.
    std::vector<std::vector<LlcMissRecord>> result(cores, trace);
    const std::uint64_t stride = dataBlocks / cores;
    for (unsigned c = 0; c < cores; ++c) {
        for (LlcMissRecord &rec : result[c])
            rec.addr = (rec.addr % stride) + stride * c;
    }
    return result;
}

} // namespace

std::vector<LlcMissRecord>
makeTrace(const std::string &workload, std::uint64_t misses,
          std::uint64_t seed)
{
    WorkloadGenerator gen(specProfile(workload), seed);
    return gen.generate(misses);
}

RunMetrics
runSystem(const SystemConfig &cfg,
          const std::vector<LlcMissRecord> &rawTrace)
{
    // Fold workload addresses into the configured data space (the
    // profiles target the default 2^20-block ORAM; smaller studies
    // reuse them scaled down).
    std::vector<LlcMissRecord> trace = rawTrace;
    for (LlcMissRecord &rec : trace)
        rec.addr %= cfg.oram.dataBlocks;

    RunMetrics m;
    DramModel dram(cfg.dramTiming, cfg.dramGeometry);
    EnergyModel energy(DramEnergy{}, cfg.dramGeometry.channels);

    auto runCpu = [&](MemoryPort &port) -> CpuRunResult {
        if (cfg.cpu == CpuKind::InOrder) {
            InOrderCpu cpu;
            return cpu.run(trace, port);
        }
        OooCpu cpu(cfg.cores, cfg.window);
        return cpu.run(
            perCoreTraces(trace, cfg.cores, cfg.oram.dataBlocks),
            port);
    };

    struct RecordingPort : MemoryPort
    {
        MemoryPort *inner = nullptr;
        std::vector<Cycles> *out = nullptr;

        MemoryReply
        request(Addr addr, Op op, Cycles issueTime) override
        {
            MemoryReply r = inner->request(addr, op, issueTime);
            out->push_back(r.forwardAt);
            return r;
        }
    };
    RecordingPort recorder;
    auto maybeRecord = [&](MemoryPort &inner) -> MemoryPort & {
        if (!cfg.recordPerMiss)
            return inner;
        recorder.inner = &inner;
        recorder.out = &m.missRetireTimes;
        return recorder;
    };

    if (cfg.scheme == Scheme::Insecure) {
        InsecureMemory mem(dram);
        InsecurePort port(mem);
        CpuRunResult r = runCpu(maybeRecord(port));
        m.execTime = r.finishTime;
        m.dataAccessTime = port.busyTime();
        m.driTime = static_cast<double>(m.execTime) - m.dataAccessTime;
        m.requests = r.reads + r.writes;
        m.energy = energy.totalEnergy(dram.stats(), m.execTime);
        return m;
    }

    std::unique_ptr<DuplicationPolicy> policy;
    const ShadowPolicy *shadowPolicy = nullptr;
    if (cfg.scheme == Scheme::Shadow) {
        const unsigned leafLevel = cfg.oram.deriveLevels();
        auto sp = std::make_unique<ShadowPolicy>(cfg.shadow,
                                                 leafLevel);
        shadowPolicy = sp.get();
        policy = std::move(sp);
    }

    TinyOram oram(cfg.oram, dram, std::move(policy));

    Cycles interval = cfg.tpInterval;
    if (cfg.timingProtection && interval == 0) {
        // Auto-size: one slot per average request service time
        // (path read plus the amortised eviction read+write).
        const Cycles path = oram.estimatePathReadLatency();
        interval = path +
                   2 * path / cfg.oram.evictionRate;
    }
    if (!cfg.timingProtection && interval == 0)
        interval = oram.estimatePathReadLatency();

    OramPort port(oram, cfg.timingProtection, interval,
                  cfg.virtualDummies, cfg.watchdogInterval);
    CpuRunResult r = runCpu(maybeRecord(port));

    m.execTime = r.finishTime;
    m.dataAccessTime = port.dataBusyTime();
    m.driTime = static_cast<double>(m.execTime) - m.dataAccessTime;
    if (m.driTime < 0.0)
        m.driTime = 0.0;

    const OramStats &os = oram.stats();
    m.requests = os.requests;
    m.dummyRequests = os.dummyAccesses;
    m.stashHits = os.stashHits;
    m.shadowStashHits = os.shadowStashHits;
    m.shadowForwards = os.shadowForwards;
    m.pathReads = os.pathReads;
    m.shadowsWritten = os.shadowsWritten;
    m.onChipHitRate = os.requests
        ? static_cast<double>(os.onChipHits) /
          static_cast<double>(os.requests)
        : 0.0;
    m.energy = energy.totalEnergy(dram.stats(), m.execTime);
    m.stashPeakReal = oram.stash().stats().peakReal;
    m.stashOverflows = oram.stash().stats().overflowEvents;
    m.faultsInjected = os.faultsInjected;
    m.faultsDetected = os.faultsDetected;
    m.faultsRecovered = os.faultsRecovered;
    m.faultsUnrecoverable = os.faultsUnrecoverable;
    if (shadowPolicy)
        m.finalPartitionLevel = shadowPolicy->partitionLevel();
    return m;
}

RunMetrics
runWorkload(const SystemConfig &cfg, const std::string &workload,
            std::uint64_t misses, std::uint64_t seed)
{
    return runSystem(cfg, makeTrace(workload, misses, seed));
}

} // namespace sboram
