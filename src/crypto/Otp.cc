#include "Otp.hh"

namespace sboram {

SB_HOT void
OtpCodec::encryptBatch(const std::uint64_t *const *plains,
                       const CipherRef *outs, std::size_t count,
                       std::uint64_t words, std::uint64_t *ksScratch)
{
    // Pass 1: nonce assignment, in array order.  This is the exact
    // sequence count successive encryptRef calls would draw, which
    // keeps the ciphertext bitstream — and everything downstream of
    // it (fault schedules, snapshot images) — unchanged.
    for (std::size_t s = 0; s < count; ++s)
        *outs[s].nonce = ++_nonceCounter;

    // Pass 2: the whole path's keystream in one sweep.  Each slot's
    // per-nonce PRF state is hoisted once; the inner loop is three
    // mixes per lane with no per-slot setup beyond that.
    for (std::size_t s = 0; s < count; ++s)
        PrfStream(_key, *outs[s].nonce)
            .fill(ksScratch + s * words, words);

    // Pass 3: XOR the pads in, then chain the tag over the fresh
    // ciphertext lanes (the tag MAC is sequential by construction).
    for (std::size_t s = 0; s < count; ++s) {
        const std::uint64_t *plain = plains[s];
        const std::uint64_t *ks = ksScratch + s * words;
        const CipherRef &out = outs[s];
        for (std::uint64_t i = 0; i < words; ++i)
            out.lanes[i] = plain[i] ^ ks[i];
        *out.tag = computeTag(*out.nonce, out.lanes, words);
    }
}

} // namespace sboram
