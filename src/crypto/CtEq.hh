/**
 * @file
 * Constant-time equality for MAC/tag material.
 *
 * memcmp short-circuits on the first differing byte, which turns a
 * tag comparison into a timing oracle.  The simulator's PRF-MAC only
 * defends against torn writes and bit rot (see Snapshot.cc), but the
 * comparison discipline is part of the determinism/obliviousness
 * contract sblint enforces (`banned-fn`): every tag compare in the
 * tree goes through these helpers so a future real-crypto backend
 * cannot inherit a short-circuiting compare by accident.
 */

#ifndef SBORAM_CRYPTO_CTEQ_HH
#define SBORAM_CRYPTO_CTEQ_HH

#include <cstddef>
#include <cstdint>

namespace sboram {

/** Constant-time byte-range equality: no data-dependent branches. */
inline bool
constTimeEq(const std::uint8_t *a, const std::uint8_t *b,
            std::size_t len)
{
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < len; ++i)
        acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
    return acc == 0;
}

/** Constant-time 64-bit equality (tag words). */
inline bool
constTimeEq64(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t d = a ^ b;
    // Fold to one bit without a comparison the optimiser can
    // re-branch: (d | -d) has the sign bit set iff d != 0.
    return ((d | (0 - d)) >> 63) == 0;
}

} // namespace sboram

#endif // SBORAM_CRYPTO_CTEQ_HH
