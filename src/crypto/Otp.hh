/**
 * @file
 * One-time-pad block cipher for ORAM blocks.
 *
 * Every path write re-encrypts each slot under a fresh nonce, so two
 * ciphertexts of the same plaintext are different — this is what makes
 * shadow blocks indistinguishable from ordinary dummy blocks (paper
 * Section IV-A).  The payload is encrypted in 64-bit lanes.
 */

#ifndef SBORAM_CRYPTO_OTP_HH
#define SBORAM_CRYPTO_OTP_HH

#include <cstdint>
#include <vector>

#include "Prf.hh"

namespace sboram {

/** Ciphertext for one slot: nonce in the clear plus padded lanes and
 *  an authentication tag (Tiny ORAM's baseline includes integrity
 *  verification [18]). */
struct CipherText
{
    std::uint64_t nonce = 0;
    std::uint64_t tag = 0;
    std::vector<std::uint64_t> lanes;
};

/**
 * One-time-pad codec.  Stateless apart from the key and a running
 * nonce counter (the nonce must never repeat under one key).
 */
class OtpCodec
{
  public:
    explicit OtpCodec(PrfKey key = PrfKey{}) : _key(key) {}

    /** Encrypt lanes under a fresh nonce and authenticate them. */
    CipherText
    encrypt(const std::vector<std::uint64_t> &plain)
    {
        CipherText ct;
        encryptInto(plain, ct);
        return ct;
    }

    /**
     * Encrypt into an existing ciphertext, reusing its lane storage
     * (the path-write hot path re-encrypts every slot; this keeps it
     * allocation-free once buffers exist).
     */
    void
    encryptInto(const std::vector<std::uint64_t> &plain, CipherText &ct)
    {
        ct.nonce = ++_nonceCounter;
        ct.lanes.resize(plain.size());
        for (std::size_t i = 0; i < plain.size(); ++i)
            ct.lanes[i] = plain[i] ^ prf64(_key, ct.nonce, i);
        ct.tag = computeTag(ct);
    }

    /** Decrypt a ciphertext produced by this codec's key. */
    std::vector<std::uint64_t>
    decrypt(const CipherText &ct) const
    {
        std::vector<std::uint64_t> plain(ct.lanes.size());
        for (std::size_t i = 0; i < ct.lanes.size(); ++i)
            plain[i] = ct.lanes[i] ^ prf64(_key, ct.nonce, i);
        return plain;
    }

    /** True when the ciphertext's tag authenticates. */
    bool
    verify(const CipherText &ct) const
    {
        return ct.tag == computeTag(ct);
    }

    /** Decrypt with integrity verification; fatal-free: the caller
     *  decides how to react to tampering.  Decrypts in place so
     *  @p plain's capacity is reused (path-read hot path). */
    bool
    verifyDecrypt(const CipherText &ct,
                  std::vector<std::uint64_t> &plain) const
    {
        if (!verify(ct))
            return false;
        plain.resize(ct.lanes.size());
        for (std::size_t i = 0; i < ct.lanes.size(); ++i)
            plain[i] = ct.lanes[i] ^ prf64(_key, ct.nonce, i);
        return true;
    }

    std::uint64_t noncesIssued() const { return _nonceCounter; }

    /**
     * Restore the nonce counter from a checkpoint.  Only valid with
     * the counter a snapshot of this codec reported; rewinding it
     * would reuse nonces and break the one-time-pad contract.
     */
    void restoreNonceCounter(std::uint64_t n) { _nonceCounter = n; }

  private:
    /** Keyed MAC over (nonce, lanes): a PRF chain.  Not
     *  cryptographically strong (see Prf.hh) but structurally
     *  faithful: any bit flip in nonce or lanes breaks the tag. */
    std::uint64_t
    computeTag(const CipherText &ct) const
    {
        std::uint64_t acc = prf64(_key, ct.nonce, 0x7461675fULL);
        for (std::size_t i = 0; i < ct.lanes.size(); ++i)
            acc = prf64(_key, acc ^ ct.lanes[i], i + 1);
        return acc;
    }

    PrfKey _key;
    std::uint64_t _nonceCounter = 0;
};

} // namespace sboram

#endif // SBORAM_CRYPTO_OTP_HH
