/**
 * @file
 * One-time-pad block cipher for ORAM blocks.
 *
 * Every path write re-encrypts each slot under a fresh nonce, so two
 * ciphertexts of the same plaintext are different — this is what makes
 * shadow blocks indistinguishable from ordinary dummy blocks (paper
 * Section IV-A).  The payload is encrypted in 64-bit lanes.
 *
 * Two storage shapes share one codec:
 *
 *   - CipherText owns its lanes (tests, standalone use).
 *   - CipherRef/CipherView point into an externally owned slab (the
 *     OramTree's geometry-indexed ciphertext arrays).  A CipherText
 *     converts implicitly to either view, so view-taking codec
 *     methods serve both shapes.
 *
 * The batch entry point encryptBatch() encrypts every pending slot of
 * a path write in one pass: nonces are assigned in call order
 * (identical to the sequence that per-slot encryptInto calls would
 * have drawn — the nonce sequence is a determinism contract), the
 * whole keystream is generated into one scratch buffer via PrfStream,
 * then lanes are XORed and tags chained per slot.
 */

#ifndef SBORAM_CRYPTO_OTP_HH
#define SBORAM_CRYPTO_OTP_HH

#include <cstdint>
#include <vector>

#include "Prf.hh"
#include "common/Types.hh"

namespace sboram {

/** Ciphertext for one slot: nonce in the clear plus padded lanes and
 *  an authentication tag (Tiny ORAM's baseline includes integrity
 *  verification [18]). */
struct CipherText
{
    std::uint64_t nonce = 0;
    std::uint64_t tag = 0;
    std::vector<std::uint64_t> lanes;
};

/** Mutable view of one slot's ciphertext storage inside a slab. */
struct CipherRef
{
    std::uint64_t *nonce = nullptr;
    std::uint64_t *tag = nullptr;
    std::uint64_t *lanes = nullptr;
    std::uint64_t words = 0;

    CipherRef() = default;
    CipherRef(std::uint64_t *n, std::uint64_t *t, std::uint64_t *l,
              std::uint64_t w)
        : nonce(n), tag(t), lanes(l), words(w) {}
    /** An owning CipherText is itself a one-slot slab. */
    CipherRef(CipherText &ct)
        : nonce(&ct.nonce), tag(&ct.tag), lanes(ct.lanes.data()),
          words(ct.lanes.size()) {}
};

/** Read-only view of one slot's ciphertext storage. */
struct CipherView
{
    const std::uint64_t *nonce = nullptr;
    const std::uint64_t *tag = nullptr;
    const std::uint64_t *lanes = nullptr;
    std::uint64_t words = 0;

    CipherView() = default;
    CipherView(const std::uint64_t *n, const std::uint64_t *t,
               const std::uint64_t *l, std::uint64_t w)
        : nonce(n), tag(t), lanes(l), words(w) {}
    CipherView(const CipherText &ct)
        : nonce(&ct.nonce), tag(&ct.tag), lanes(ct.lanes.data()),
          words(ct.lanes.size()) {}
    CipherView(const CipherRef &r)
        : nonce(r.nonce), tag(r.tag), lanes(r.lanes), words(r.words) {}
};

/**
 * One-time-pad codec.  Stateless apart from the key and a running
 * nonce counter (the nonce must never repeat under one key).
 */
class OtpCodec
{
  public:
    explicit OtpCodec(PrfKey key = PrfKey{}) : _key(key) {}

    /** Encrypt lanes under a fresh nonce and authenticate them. */
    CipherText
    encrypt(const std::vector<std::uint64_t> &plain)
    {
        CipherText ct;
        encryptInto(plain, ct);
        return ct;
    }

    /**
     * Encrypt into an existing ciphertext, reusing its lane storage
     * (the path-write hot path re-encrypts every slot; this keeps it
     * allocation-free once buffers exist).
     */
    SB_HOT void
    encryptInto(const std::vector<std::uint64_t> &plain, CipherText &ct)
    {
        ct.lanes.resize(plain.size());
        encryptRef(plain.data(), CipherRef(ct));
    }

    /**
     * Encrypt @p out.words plaintext lanes straight into slab
     * storage.  Allocation-free; the nonce is drawn from the same
     * counter as every other encrypt entry point.
     */
    SB_HOT void
    encryptRef(const std::uint64_t *plain, CipherRef out)
    {
        *out.nonce = ++_nonceCounter;
        const PrfStream ks(_key, *out.nonce);
        for (std::uint64_t i = 0; i < out.words; ++i)
            out.lanes[i] = plain[i] ^ ks.lane(i);
        *out.tag = computeTag(*out.nonce, out.lanes, out.words);
    }

    /**
     * Batch-encrypt @p count slots of @p words lanes each: assigns
     * nonces in array order, generates the keystream for all slots in
     * one pass into @p ksScratch (caller-pooled, >= count*words
     * words), then XORs and tags each slot.  Nonce sequence and
     * ciphertext bits are identical to count successive encryptRef
     * calls.
     */
    SB_HOT void encryptBatch(const std::uint64_t *const *plains,
                             const CipherRef *outs, std::size_t count,
                             std::uint64_t words,
                             std::uint64_t *ksScratch);

    /** Decrypt a ciphertext produced by this codec's key. */
    std::vector<std::uint64_t>
    decrypt(const CipherText &ct) const
    {
        std::vector<std::uint64_t> plain;
        decryptInto(ct, plain);
        return plain;
    }

    /** Decrypt into @p plain, reusing its capacity (no verification:
     *  the caller has already authenticated or does not care). */
    void
    decryptInto(CipherView ct, std::vector<std::uint64_t> &plain) const
    {
        plain.resize(ct.words);
        const PrfStream ks(_key, *ct.nonce);
        for (std::uint64_t i = 0; i < ct.words; ++i)
            plain[i] = ct.lanes[i] ^ ks.lane(i);
    }

    /** True when the ciphertext's tag authenticates. */
    bool
    verify(CipherView ct) const
    {
        return *ct.tag == computeTag(*ct.nonce, ct.lanes, ct.words);
    }

    /** Decrypt with integrity verification; fatal-free: the caller
     *  decides how to react to tampering.  Decrypts in place so
     *  @p plain's capacity is reused (path-read hot path). */
    SB_HOT bool
    verifyDecrypt(CipherView ct,
                  std::vector<std::uint64_t> &plain) const
    {
        if (!verify(ct))
            return false;
        plain.resize(ct.words);
        const PrfStream ks(_key, *ct.nonce);
        for (std::uint64_t i = 0; i < ct.words; ++i)
            plain[i] = ct.lanes[i] ^ ks.lane(i);
        return true;
    }

    std::uint64_t noncesIssued() const { return _nonceCounter; }

    /**
     * Restore the nonce counter from a checkpoint.  Only valid with
     * the counter a snapshot of this codec reported; rewinding it
     * would reuse nonces and break the one-time-pad contract.
     */
    void restoreNonceCounter(std::uint64_t n) { _nonceCounter = n; }

  private:
    /** Keyed MAC over (nonce, lanes): a PRF chain.  Not
     *  cryptographically strong (see Prf.hh) but structurally
     *  faithful: any bit flip in nonce or lanes breaks the tag.
     *  Sequential by construction (each link keys the next), so it is
     *  not batched the way the keystream is. */
    std::uint64_t
    computeTag(std::uint64_t nonce, const std::uint64_t *lanes,
               std::uint64_t words) const
    {
        std::uint64_t acc = prf64(_key, nonce, 0x7461675fULL);
        for (std::uint64_t i = 0; i < words; ++i)
            acc = prf64(_key, acc ^ lanes[i], i + 1);
        return acc;
    }

    PrfKey _key;
    std::uint64_t _nonceCounter = 0;
};

} // namespace sboram

#endif // SBORAM_CRYPTO_OTP_HH
