#include "Prf.hh"

namespace sboram {

namespace {

inline std::uint64_t
mix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
prf64(const PrfKey &key, std::uint64_t nonce, std::uint64_t counter)
{
    std::uint64_t z = key.lo ^ (nonce * 0xd6e8feb86659fd93ULL);
    z = mix(z + counter * 0x9e3779b97f4a7c15ULL);
    z = mix(z ^ key.hi);
    z = mix(z + (nonce << 32 | (counter & 0xffffffffULL)));
    return z;
}

} // namespace sboram
