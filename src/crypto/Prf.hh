/**
 * @file
 * Keyed pseudo-random function used as the keystream generator for the
 * one-time-pad block encryption (paper Section II-C: "both data blocks
 * and dummy blocks are probabilistically encrypted with One Time
 * Pad").
 *
 * This is NOT a cryptographically strong primitive — the simulator
 * needs the *structure* of probabilistic encryption (fresh nonce per
 * write, ciphertext indistinguishability in the statistical tests, a
 * real encrypt/decrypt code path whose latency is modelled), not
 * production AES.  The construction is a 4-round splitmix-style mix of
 * (key, nonce, counter), which passes the avalanche/uniformity tests
 * in tests/crypto.
 *
 * Two entry points expose the same function:
 *
 *   - prf64(key, nonce, counter): one lane at a time.
 *   - PrfStream(key, nonce): the per-(key, nonce) part of the mix is
 *     hoisted once, then lane(counter)/fill() generate the keystream
 *     for all lanes of a slot — the batch path used by OtpCodec when
 *     it encrypts a whole ORAM path in one pass.
 *
 * PrfStream{k, n}.lane(c) == prf64(k, n, c) bit-for-bit; the crypto
 * tests pin this equivalence, because the nonce/keystream sequence is
 * part of the repo's determinism contract.
 */

#ifndef SBORAM_CRYPTO_PRF_HH
#define SBORAM_CRYPTO_PRF_HH

#include <cstdint>

namespace sboram {

/** 128-bit key for the pad PRF. */
struct PrfKey
{
    std::uint64_t lo = 0x5bd1e9955bd1e995ULL;
    std::uint64_t hi = 0x9e3779b97f4a7c15ULL;
};

namespace detail {

/** splitmix64 finalizer; one round of the 4-round construction. */
inline std::uint64_t
prfMix(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace detail

/**
 * Keystream generator with the (key, nonce)-dependent state hoisted
 * out of the per-lane loop.  Cheap to construct (three ALU ops); one
 * instance serves all lanes encrypted under one nonce.
 */
class PrfStream
{
  public:
    PrfStream(const PrfKey &key, std::uint64_t nonce)
        : _z0(key.lo ^ (nonce * 0xd6e8feb86659fd93ULL)),
          _keyHi(key.hi),
          _nonceHi(nonce << 32)
    {
    }

    /** Keystream word for lane @p counter. */
    std::uint64_t
    lane(std::uint64_t counter) const
    {
        std::uint64_t z =
            detail::prfMix(_z0 + counter * 0x9e3779b97f4a7c15ULL);
        z = detail::prfMix(z ^ _keyHi);
        return detail::prfMix(z + (_nonceHi | (counter & 0xffffffffULL)));
    }

    /** Fill @p out with keystream words for lanes [0, count). */
    void
    fill(std::uint64_t *out, std::uint64_t count) const
    {
        for (std::uint64_t i = 0; i < count; ++i)
            out[i] = lane(i);
    }

  private:
    std::uint64_t _z0;      ///< key.lo mixed with the nonce.
    std::uint64_t _keyHi;
    std::uint64_t _nonceHi; ///< nonce << 32, ready to OR the counter.
};

/**
 * Deterministic 64-bit PRF output for (key, nonce, counter).
 * Each 64-bit lane of a block pad is prf(key, nonce, laneIndex).
 */
inline std::uint64_t
prf64(const PrfKey &key, std::uint64_t nonce, std::uint64_t counter)
{
    return PrfStream(key, nonce).lane(counter);
}

} // namespace sboram

#endif // SBORAM_CRYPTO_PRF_HH
