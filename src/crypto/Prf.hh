/**
 * @file
 * Keyed pseudo-random function used as the keystream generator for the
 * one-time-pad block encryption (paper Section II-C: "both data blocks
 * and dummy blocks are probabilistically encrypted with One Time
 * Pad").
 *
 * This is NOT a cryptographically strong primitive — the simulator
 * needs the *structure* of probabilistic encryption (fresh nonce per
 * write, ciphertext indistinguishability in the statistical tests, a
 * real encrypt/decrypt code path whose latency is modelled), not
 * production AES.  The construction is a 4-round splitmix-style mix of
 * (key, nonce, counter), which passes the avalanche/uniformity tests
 * in tests/crypto.
 */

#ifndef SBORAM_CRYPTO_PRF_HH
#define SBORAM_CRYPTO_PRF_HH

#include <cstdint>

namespace sboram {

/** 128-bit key for the pad PRF. */
struct PrfKey
{
    std::uint64_t lo = 0x5bd1e9955bd1e995ULL;
    std::uint64_t hi = 0x9e3779b97f4a7c15ULL;
};

/**
 * Deterministic 64-bit PRF output for (key, nonce, counter).
 * Each 64-bit lane of a block pad is prf(key, nonce, laneIndex).
 */
std::uint64_t prf64(const PrfKey &key, std::uint64_t nonce,
                    std::uint64_t counter);

} // namespace sboram

#endif // SBORAM_CRYPTO_PRF_HH
