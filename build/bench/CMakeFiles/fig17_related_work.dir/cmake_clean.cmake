file(REMOVE_RECURSE
  "CMakeFiles/fig17_related_work.dir/fig17_related_work.cc.o"
  "CMakeFiles/fig17_related_work.dir/fig17_related_work.cc.o.d"
  "fig17_related_work"
  "fig17_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
