# Empty compiler generated dependencies file for fig17_related_work.
# This may be replaced when dependencies are built.
