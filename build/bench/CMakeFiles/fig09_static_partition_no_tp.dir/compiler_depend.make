# Empty compiler generated dependencies file for fig09_static_partition_no_tp.
# This may be replaced when dependencies are built.
