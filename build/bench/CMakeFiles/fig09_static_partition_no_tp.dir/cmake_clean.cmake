file(REMOVE_RECURSE
  "CMakeFiles/fig09_static_partition_no_tp.dir/fig09_static_partition_no_tp.cc.o"
  "CMakeFiles/fig09_static_partition_no_tp.dir/fig09_static_partition_no_tp.cc.o.d"
  "fig09_static_partition_no_tp"
  "fig09_static_partition_no_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_static_partition_no_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
