# Empty compiler generated dependencies file for fig13_dup_tp.
# This may be replaced when dependencies are built.
