file(REMOVE_RECURSE
  "CMakeFiles/fig13_dup_tp.dir/fig13_dup_tp.cc.o"
  "CMakeFiles/fig13_dup_tp.dir/fig13_dup_tp.cc.o.d"
  "fig13_dup_tp"
  "fig13_dup_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dup_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
