file(REMOVE_RECURSE
  "CMakeFiles/fig19_oram_size.dir/fig19_oram_size.cc.o"
  "CMakeFiles/fig19_oram_size.dir/fig19_oram_size.cc.o.d"
  "fig19_oram_size"
  "fig19_oram_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_oram_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
