# Empty compiler generated dependencies file for fig06_hmmer_phases.
# This may be replaced when dependencies are built.
