file(REMOVE_RECURSE
  "CMakeFiles/fig06_hmmer_phases.dir/fig06_hmmer_phases.cc.o"
  "CMakeFiles/fig06_hmmer_phases.dir/fig06_hmmer_phases.cc.o.d"
  "fig06_hmmer_phases"
  "fig06_hmmer_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hmmer_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
