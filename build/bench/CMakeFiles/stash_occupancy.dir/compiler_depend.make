# Empty compiler generated dependencies file for stash_occupancy.
# This may be replaced when dependencies are built.
