file(REMOVE_RECURSE
  "CMakeFiles/stash_occupancy.dir/stash_occupancy.cc.o"
  "CMakeFiles/stash_occupancy.dir/stash_occupancy.cc.o.d"
  "stash_occupancy"
  "stash_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stash_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
