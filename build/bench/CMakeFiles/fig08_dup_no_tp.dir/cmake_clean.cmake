file(REMOVE_RECURSE
  "CMakeFiles/fig08_dup_no_tp.dir/fig08_dup_no_tp.cc.o"
  "CMakeFiles/fig08_dup_no_tp.dir/fig08_dup_no_tp.cc.o.d"
  "fig08_dup_no_tp"
  "fig08_dup_no_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_dup_no_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
