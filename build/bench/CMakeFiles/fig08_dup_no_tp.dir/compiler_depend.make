# Empty compiler generated dependencies file for fig08_dup_no_tp.
# This may be replaced when dependencies are built.
