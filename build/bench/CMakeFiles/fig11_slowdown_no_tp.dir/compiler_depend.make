# Empty compiler generated dependencies file for fig11_slowdown_no_tp.
# This may be replaced when dependencies are built.
