file(REMOVE_RECURSE
  "CMakeFiles/fig11_slowdown_no_tp.dir/fig11_slowdown_no_tp.cc.o"
  "CMakeFiles/fig11_slowdown_no_tp.dir/fig11_slowdown_no_tp.cc.o.d"
  "fig11_slowdown_no_tp"
  "fig11_slowdown_no_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_slowdown_no_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
