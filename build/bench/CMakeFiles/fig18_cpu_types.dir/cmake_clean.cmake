file(REMOVE_RECURSE
  "CMakeFiles/fig18_cpu_types.dir/fig18_cpu_types.cc.o"
  "CMakeFiles/fig18_cpu_types.dir/fig18_cpu_types.cc.o.d"
  "fig18_cpu_types"
  "fig18_cpu_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cpu_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
