# Empty compiler generated dependencies file for fig18_cpu_types.
# This may be replaced when dependencies are built.
