# Empty compiler generated dependencies file for fig15_slowdown_tp.
# This may be replaced when dependencies are built.
