file(REMOVE_RECURSE
  "CMakeFiles/fig15_slowdown_tp.dir/fig15_slowdown_tp.cc.o"
  "CMakeFiles/fig15_slowdown_tp.dir/fig15_slowdown_tp.cc.o.d"
  "fig15_slowdown_tp"
  "fig15_slowdown_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_slowdown_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
