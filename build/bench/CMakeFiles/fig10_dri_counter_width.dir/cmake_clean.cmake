file(REMOVE_RECURSE
  "CMakeFiles/fig10_dri_counter_width.dir/fig10_dri_counter_width.cc.o"
  "CMakeFiles/fig10_dri_counter_width.dir/fig10_dri_counter_width.cc.o.d"
  "fig10_dri_counter_width"
  "fig10_dri_counter_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dri_counter_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
