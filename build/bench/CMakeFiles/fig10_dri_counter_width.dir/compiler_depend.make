# Empty compiler generated dependencies file for fig10_dri_counter_width.
# This may be replaced when dependencies are built.
