file(REMOVE_RECURSE
  "CMakeFiles/security_rrwp.dir/security_rrwp.cc.o"
  "CMakeFiles/security_rrwp.dir/security_rrwp.cc.o.d"
  "security_rrwp"
  "security_rrwp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_rrwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
