# Empty compiler generated dependencies file for security_rrwp.
# This may be replaced when dependencies are built.
