# Empty compiler generated dependencies file for fig14_static_partition_tp.
# This may be replaced when dependencies are built.
