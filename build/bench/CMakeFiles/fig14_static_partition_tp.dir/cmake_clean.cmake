file(REMOVE_RECURSE
  "CMakeFiles/fig14_static_partition_tp.dir/fig14_static_partition_tp.cc.o"
  "CMakeFiles/fig14_static_partition_tp.dir/fig14_static_partition_tp.cc.o.d"
  "fig14_static_partition_tp"
  "fig14_static_partition_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_static_partition_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
