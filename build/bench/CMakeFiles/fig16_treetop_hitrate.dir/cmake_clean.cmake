file(REMOVE_RECURSE
  "CMakeFiles/fig16_treetop_hitrate.dir/fig16_treetop_hitrate.cc.o"
  "CMakeFiles/fig16_treetop_hitrate.dir/fig16_treetop_hitrate.cc.o.d"
  "fig16_treetop_hitrate"
  "fig16_treetop_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_treetop_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
