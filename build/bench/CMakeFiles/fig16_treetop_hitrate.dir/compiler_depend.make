# Empty compiler generated dependencies file for fig16_treetop_hitrate.
# This may be replaced when dependencies are built.
