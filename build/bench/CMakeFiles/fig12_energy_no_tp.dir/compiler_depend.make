# Empty compiler generated dependencies file for fig12_energy_no_tp.
# This may be replaced when dependencies are built.
