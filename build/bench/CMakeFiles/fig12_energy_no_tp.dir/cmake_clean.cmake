file(REMOVE_RECURSE
  "CMakeFiles/fig12_energy_no_tp.dir/fig12_energy_no_tp.cc.o"
  "CMakeFiles/fig12_energy_no_tp.dir/fig12_energy_no_tp.cc.o.d"
  "fig12_energy_no_tp"
  "fig12_energy_no_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_energy_no_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
