# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_perf "/root/repo/build/bench/perf_smoke")
set_tests_properties(bench_smoke_perf PROPERTIES  ENVIRONMENT "SB_BENCH_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig13 "/root/repo/build/bench/fig13_dup_tp")
set_tests_properties(bench_smoke_fig13 PROPERTIES  ENVIRONMENT "SB_BENCH_QUICK=1;SB_BENCH_MISSES=400;SB_BENCH_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;35;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fault_sweep "/root/repo/build/bench/fault_sweep")
set_tests_properties(bench_smoke_fault_sweep PROPERTIES  ENVIRONMENT "SB_BENCH_QUICK=1;SB_BENCH_MISSES=2000;SB_BENCH_THREADS=2" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
