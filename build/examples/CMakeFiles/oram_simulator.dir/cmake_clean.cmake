file(REMOVE_RECURSE
  "CMakeFiles/oram_simulator.dir/oram_simulator.cpp.o"
  "CMakeFiles/oram_simulator.dir/oram_simulator.cpp.o.d"
  "oram_simulator"
  "oram_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oram_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
