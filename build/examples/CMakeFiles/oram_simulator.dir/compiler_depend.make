# Empty compiler generated dependencies file for oram_simulator.
# This may be replaced when dependencies are built.
