file(REMOVE_RECURSE
  "CMakeFiles/pattern_hiding_demo.dir/pattern_hiding_demo.cpp.o"
  "CMakeFiles/pattern_hiding_demo.dir/pattern_hiding_demo.cpp.o.d"
  "pattern_hiding_demo"
  "pattern_hiding_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_hiding_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
