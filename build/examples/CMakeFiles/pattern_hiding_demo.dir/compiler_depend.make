# Empty compiler generated dependencies file for pattern_hiding_demo.
# This may be replaced when dependencies are built.
