# Empty compiler generated dependencies file for secure_kv_store.
# This may be replaced when dependencies are built.
