file(REMOVE_RECURSE
  "CMakeFiles/test_oram.dir/oram/ConfigTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/ConfigTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/PlbTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/PlbTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/PosMapTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/PosMapTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/ShadowSemanticsTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/ShadowSemanticsTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/StashTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/StashTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/TinyOramTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/TinyOramTest.cc.o.d"
  "CMakeFiles/test_oram.dir/oram/TreeTest.cc.o"
  "CMakeFiles/test_oram.dir/oram/TreeTest.cc.o.d"
  "test_oram"
  "test_oram.pdb"
  "test_oram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
