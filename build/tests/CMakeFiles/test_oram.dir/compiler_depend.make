# Empty compiler generated dependencies file for test_oram.
# This may be replaced when dependencies are built.
