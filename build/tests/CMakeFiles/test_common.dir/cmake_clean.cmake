file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/LoggingTest.cc.o"
  "CMakeFiles/test_common.dir/common/LoggingTest.cc.o.d"
  "CMakeFiles/test_common.dir/common/RngTest.cc.o"
  "CMakeFiles/test_common.dir/common/RngTest.cc.o.d"
  "CMakeFiles/test_common.dir/common/SatCounterTest.cc.o"
  "CMakeFiles/test_common.dir/common/SatCounterTest.cc.o.d"
  "CMakeFiles/test_common.dir/common/StatsTest.cc.o"
  "CMakeFiles/test_common.dir/common/StatsTest.cc.o.d"
  "CMakeFiles/test_common.dir/common/TableTest.cc.o"
  "CMakeFiles/test_common.dir/common/TableTest.cc.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
