file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/AddressMapTest.cc.o"
  "CMakeFiles/test_mem.dir/mem/AddressMapTest.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/DramModelTest.cc.o"
  "CMakeFiles/test_mem.dir/mem/DramModelTest.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/DramSweepTest.cc.o"
  "CMakeFiles/test_mem.dir/mem/DramSweepTest.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/EnergyModelTest.cc.o"
  "CMakeFiles/test_mem.dir/mem/EnergyModelTest.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
