file(REMOVE_RECURSE
  "CMakeFiles/test_shadow.dir/shadow/DupQueueTest.cc.o"
  "CMakeFiles/test_shadow.dir/shadow/DupQueueTest.cc.o.d"
  "CMakeFiles/test_shadow.dir/shadow/HotCacheTest.cc.o"
  "CMakeFiles/test_shadow.dir/shadow/HotCacheTest.cc.o.d"
  "CMakeFiles/test_shadow.dir/shadow/PartitionTest.cc.o"
  "CMakeFiles/test_shadow.dir/shadow/PartitionTest.cc.o.d"
  "CMakeFiles/test_shadow.dir/shadow/PolicyFeatureTest.cc.o"
  "CMakeFiles/test_shadow.dir/shadow/PolicyFeatureTest.cc.o.d"
  "CMakeFiles/test_shadow.dir/shadow/ShadowPolicyTest.cc.o"
  "CMakeFiles/test_shadow.dir/shadow/ShadowPolicyTest.cc.o.d"
  "test_shadow"
  "test_shadow.pdb"
  "test_shadow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
