# Empty compiler generated dependencies file for test_shadow.
# This may be replaced when dependencies are built.
