
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault/FaultTest.cc" "tests/CMakeFiles/test_fault.dir/fault/FaultTest.cc.o" "gcc" "tests/CMakeFiles/test_fault.dir/fault/FaultTest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/sb_security.dir/DependInfo.cmake"
  "/root/repo/build/src/shadow/CMakeFiles/sb_shadow.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/sb_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/sb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sb_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
