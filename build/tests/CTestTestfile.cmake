# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_oram[1]_include.cmake")
include("/root/repo/build/tests/test_shadow[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fault[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(sanitize_smoke "/root/repo/tests/../tools/sanitize_smoke.sh" "/root/repo")
set_tests_properties(sanitize_smoke PROPERTIES  LABELS "slow" TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
