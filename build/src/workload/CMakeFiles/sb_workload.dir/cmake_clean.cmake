file(REMOVE_RECURSE
  "CMakeFiles/sb_workload.dir/SpecProfiles.cc.o"
  "CMakeFiles/sb_workload.dir/SpecProfiles.cc.o.d"
  "CMakeFiles/sb_workload.dir/TraceIo.cc.o"
  "CMakeFiles/sb_workload.dir/TraceIo.cc.o.d"
  "CMakeFiles/sb_workload.dir/Workload.cc.o"
  "CMakeFiles/sb_workload.dir/Workload.cc.o.d"
  "libsb_workload.a"
  "libsb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
