# Empty dependencies file for sb_workload.
# This may be replaced when dependencies are built.
