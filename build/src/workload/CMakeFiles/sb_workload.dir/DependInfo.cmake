
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/SpecProfiles.cc" "src/workload/CMakeFiles/sb_workload.dir/SpecProfiles.cc.o" "gcc" "src/workload/CMakeFiles/sb_workload.dir/SpecProfiles.cc.o.d"
  "/root/repo/src/workload/TraceIo.cc" "src/workload/CMakeFiles/sb_workload.dir/TraceIo.cc.o" "gcc" "src/workload/CMakeFiles/sb_workload.dir/TraceIo.cc.o.d"
  "/root/repo/src/workload/Workload.cc" "src/workload/CMakeFiles/sb_workload.dir/Workload.cc.o" "gcc" "src/workload/CMakeFiles/sb_workload.dir/Workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
