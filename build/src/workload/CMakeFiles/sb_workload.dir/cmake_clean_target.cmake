file(REMOVE_RECURSE
  "libsb_workload.a"
)
