file(REMOVE_RECURSE
  "CMakeFiles/sb_fault.dir/FaultInjector.cc.o"
  "CMakeFiles/sb_fault.dir/FaultInjector.cc.o.d"
  "libsb_fault.a"
  "libsb_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
