file(REMOVE_RECURSE
  "libsb_fault.a"
)
