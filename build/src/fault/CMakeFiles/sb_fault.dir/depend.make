# Empty dependencies file for sb_fault.
# This may be replaced when dependencies are built.
