
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/FaultInjector.cc" "src/fault/CMakeFiles/sb_fault.dir/FaultInjector.cc.o" "gcc" "src/fault/CMakeFiles/sb_fault.dir/FaultInjector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sb_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
