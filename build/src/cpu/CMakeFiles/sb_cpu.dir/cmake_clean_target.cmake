file(REMOVE_RECURSE
  "libsb_cpu.a"
)
