file(REMOVE_RECURSE
  "CMakeFiles/sb_cpu.dir/CpuModel.cc.o"
  "CMakeFiles/sb_cpu.dir/CpuModel.cc.o.d"
  "libsb_cpu.a"
  "libsb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
