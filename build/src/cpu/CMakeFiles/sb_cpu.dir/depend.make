# Empty dependencies file for sb_cpu.
# This may be replaced when dependencies are built.
