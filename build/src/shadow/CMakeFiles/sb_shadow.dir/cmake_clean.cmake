file(REMOVE_RECURSE
  "CMakeFiles/sb_shadow.dir/DupQueues.cc.o"
  "CMakeFiles/sb_shadow.dir/DupQueues.cc.o.d"
  "CMakeFiles/sb_shadow.dir/HotAddressCache.cc.o"
  "CMakeFiles/sb_shadow.dir/HotAddressCache.cc.o.d"
  "CMakeFiles/sb_shadow.dir/ShadowPolicy.cc.o"
  "CMakeFiles/sb_shadow.dir/ShadowPolicy.cc.o.d"
  "libsb_shadow.a"
  "libsb_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
