
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shadow/DupQueues.cc" "src/shadow/CMakeFiles/sb_shadow.dir/DupQueues.cc.o" "gcc" "src/shadow/CMakeFiles/sb_shadow.dir/DupQueues.cc.o.d"
  "/root/repo/src/shadow/HotAddressCache.cc" "src/shadow/CMakeFiles/sb_shadow.dir/HotAddressCache.cc.o" "gcc" "src/shadow/CMakeFiles/sb_shadow.dir/HotAddressCache.cc.o.d"
  "/root/repo/src/shadow/ShadowPolicy.cc" "src/shadow/CMakeFiles/sb_shadow.dir/ShadowPolicy.cc.o" "gcc" "src/shadow/CMakeFiles/sb_shadow.dir/ShadowPolicy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/oram/CMakeFiles/sb_oram.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sb_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sb_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
