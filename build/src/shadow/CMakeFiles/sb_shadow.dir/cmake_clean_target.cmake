file(REMOVE_RECURSE
  "libsb_shadow.a"
)
