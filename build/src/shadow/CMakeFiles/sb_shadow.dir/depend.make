# Empty dependencies file for sb_shadow.
# This may be replaced when dependencies are built.
