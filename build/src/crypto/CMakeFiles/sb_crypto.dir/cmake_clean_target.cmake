file(REMOVE_RECURSE
  "libsb_crypto.a"
)
