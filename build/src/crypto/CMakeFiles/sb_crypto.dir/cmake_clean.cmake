file(REMOVE_RECURSE
  "CMakeFiles/sb_crypto.dir/Prf.cc.o"
  "CMakeFiles/sb_crypto.dir/Prf.cc.o.d"
  "libsb_crypto.a"
  "libsb_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
