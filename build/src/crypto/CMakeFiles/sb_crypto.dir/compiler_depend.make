# Empty compiler generated dependencies file for sb_crypto.
# This may be replaced when dependencies are built.
