
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/AddressMap.cc" "src/mem/CMakeFiles/sb_mem.dir/AddressMap.cc.o" "gcc" "src/mem/CMakeFiles/sb_mem.dir/AddressMap.cc.o.d"
  "/root/repo/src/mem/DramModel.cc" "src/mem/CMakeFiles/sb_mem.dir/DramModel.cc.o" "gcc" "src/mem/CMakeFiles/sb_mem.dir/DramModel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
