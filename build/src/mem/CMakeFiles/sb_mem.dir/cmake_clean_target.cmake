file(REMOVE_RECURSE
  "libsb_mem.a"
)
