# Empty dependencies file for sb_mem.
# This may be replaced when dependencies are built.
