file(REMOVE_RECURSE
  "CMakeFiles/sb_mem.dir/AddressMap.cc.o"
  "CMakeFiles/sb_mem.dir/AddressMap.cc.o.d"
  "CMakeFiles/sb_mem.dir/DramModel.cc.o"
  "CMakeFiles/sb_mem.dir/DramModel.cc.o.d"
  "libsb_mem.a"
  "libsb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
