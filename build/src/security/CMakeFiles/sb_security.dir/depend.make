# Empty dependencies file for sb_security.
# This may be replaced when dependencies are built.
