file(REMOVE_RECURSE
  "libsb_security.a"
)
