file(REMOVE_RECURSE
  "CMakeFiles/sb_security.dir/Distinguisher.cc.o"
  "CMakeFiles/sb_security.dir/Distinguisher.cc.o.d"
  "CMakeFiles/sb_security.dir/InvariantChecker.cc.o"
  "CMakeFiles/sb_security.dir/InvariantChecker.cc.o.d"
  "libsb_security.a"
  "libsb_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
