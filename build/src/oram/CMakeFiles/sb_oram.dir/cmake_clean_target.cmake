file(REMOVE_RECURSE
  "libsb_oram.a"
)
