file(REMOVE_RECURSE
  "CMakeFiles/sb_oram.dir/OramConfig.cc.o"
  "CMakeFiles/sb_oram.dir/OramConfig.cc.o.d"
  "CMakeFiles/sb_oram.dir/OramTree.cc.o"
  "CMakeFiles/sb_oram.dir/OramTree.cc.o.d"
  "CMakeFiles/sb_oram.dir/Plb.cc.o"
  "CMakeFiles/sb_oram.dir/Plb.cc.o.d"
  "CMakeFiles/sb_oram.dir/RecursivePosMap.cc.o"
  "CMakeFiles/sb_oram.dir/RecursivePosMap.cc.o.d"
  "CMakeFiles/sb_oram.dir/Stash.cc.o"
  "CMakeFiles/sb_oram.dir/Stash.cc.o.d"
  "CMakeFiles/sb_oram.dir/TinyOram.cc.o"
  "CMakeFiles/sb_oram.dir/TinyOram.cc.o.d"
  "libsb_oram.a"
  "libsb_oram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_oram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
