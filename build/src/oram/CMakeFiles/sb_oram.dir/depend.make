# Empty dependencies file for sb_oram.
# This may be replaced when dependencies are built.
