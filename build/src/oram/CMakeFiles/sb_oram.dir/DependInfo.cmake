
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oram/OramConfig.cc" "src/oram/CMakeFiles/sb_oram.dir/OramConfig.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/OramConfig.cc.o.d"
  "/root/repo/src/oram/OramTree.cc" "src/oram/CMakeFiles/sb_oram.dir/OramTree.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/OramTree.cc.o.d"
  "/root/repo/src/oram/Plb.cc" "src/oram/CMakeFiles/sb_oram.dir/Plb.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/Plb.cc.o.d"
  "/root/repo/src/oram/RecursivePosMap.cc" "src/oram/CMakeFiles/sb_oram.dir/RecursivePosMap.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/RecursivePosMap.cc.o.d"
  "/root/repo/src/oram/Stash.cc" "src/oram/CMakeFiles/sb_oram.dir/Stash.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/Stash.cc.o.d"
  "/root/repo/src/oram/TinyOram.cc" "src/oram/CMakeFiles/sb_oram.dir/TinyOram.cc.o" "gcc" "src/oram/CMakeFiles/sb_oram.dir/TinyOram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sb_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/sb_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/sb_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
