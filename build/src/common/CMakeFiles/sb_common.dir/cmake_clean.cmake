file(REMOVE_RECURSE
  "CMakeFiles/sb_common.dir/Logging.cc.o"
  "CMakeFiles/sb_common.dir/Logging.cc.o.d"
  "CMakeFiles/sb_common.dir/Stats.cc.o"
  "CMakeFiles/sb_common.dir/Stats.cc.o.d"
  "CMakeFiles/sb_common.dir/Table.cc.o"
  "CMakeFiles/sb_common.dir/Table.cc.o.d"
  "libsb_common.a"
  "libsb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
