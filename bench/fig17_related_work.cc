/**
 * @file
 * Fig. 17 — comparison with related work, all with timing
 * protection: speedup over Tiny ORAM of XOR compression [12][31][34],
 * the shadow block design (dynamic-3), and shadow block combined
 * with treetop-3 / treetop-7 caching.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    Table t("Fig. 17 — speedup over Tiny ORAM (with timing "
            "protection)");
    t.header({"workload", "XOR compr.", "Shadow Block", "SB+treetop-3",
              "SB+treetop-7"});

    struct Row
    {
        Future<RunMetrics> tiny, xr, sbm, sb3m, sb7m;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads()) {
        SystemConfig xorCfg = withScheme(base, Scheme::Tiny);
        xorCfg.oram.xorCompression = true;
        SystemConfig sb = withScheme(base, Scheme::Shadow,
                                     ShadowMode::DynamicPartition, 4,
                                     3);
        SystemConfig sb3 = sb;
        sb3.oram.treetopLevels = 3;
        SystemConfig sb7 = sb;
        sb7.oram.treetopLevels = 7;
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(xorCfg, wl), submitPoint(sb, wl),
             submitPoint(sb3, wl), submitPoint(sb7, wl)});
    }

    std::vector<double> xorS, sbS, sb3S, sb7S;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics tiny = row.tiny.get();
        const double tinyT = static_cast<double>(tiny.execTime);
        const RunMetrics xr = row.xr.get();
        const RunMetrics sbm = row.sbm.get();
        const RunMetrics sb3m = row.sb3m.get();
        const RunMetrics sb7m = row.sb7m.get();

        t.beginRow(wl);
        t.cell(tinyT / static_cast<double>(xr.execTime), 2);
        t.cell(tinyT / static_cast<double>(sbm.execTime), 2);
        t.cell(tinyT / static_cast<double>(sb3m.execTime), 2);
        t.cell(tinyT / static_cast<double>(sb7m.execTime), 2);
        xorS.push_back(tinyT / static_cast<double>(xr.execTime));
        sbS.push_back(tinyT / static_cast<double>(sbm.execTime));
        sb3S.push_back(tinyT / static_cast<double>(sb3m.execTime));
        sb7S.push_back(tinyT / static_cast<double>(sb7m.execTime));
    }
    t.beginRow("gmean");
    t.cell(gmean(xorS), 2);
    t.cell(gmean(sbS), 2);
    t.cell(gmean(sb3S), 2);
    t.cell(gmean(sb7S), 2);
    t.print();

    std::printf("\npaper: shadow block beats XOR compression by 23%%; "
                "treetop-3/-7 add 8.2%%/23%%\n");
    std::printf("measured: shadow/XOR = %.2f; treetop-3 adds %.1f%%, "
                "treetop-7 adds %.1f%%\n",
                gmean(sbS) / gmean(xorS),
                100.0 * (gmean(sb3S) / gmean(sbS) - 1.0),
                100.0 * (gmean(sb7S) / gmean(sbS) - 1.0));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
