/**
 * @file
 * Fig. 9 — static partitioning sweep without timing protection:
 * normalized Interval / Data / Total vs partitioning level for
 * sjeng, h264ref, namd and the geometric mean over all ten
 * workloads.  Levels [0, P) are HD-Dup's, [P, L] RD-Dup's, so a
 * larger P assigns more dummy slots to HD-Dup.
 */

#include "PartitionSweep.hh"

static int
runBench()
{
    return sboram::bench::runPartitionSweep(false);
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
