/**
 * @file
 * Fig. 6 — (a) the phase-alternating LLC-miss intervals of hmmer and
 * (b) the execution-time trajectories of RD-Dup, HD-Dup and dynamic
 * partitioning over those phases.  In short-interval phases HD-Dup's
 * curve is flatter; in long-interval phases RD-Dup's is; dynamic
 * partitioning tracks the better of the two.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    const std::uint64_t misses = 480;  // Three full phase pairs.
    SharedTrace trace = cachedTrace("hmmer", misses, kBenchSeed);

    SystemConfig base = paperSystem();
    base.timingProtection = true;
    base.recordPerMiss = true;

    // Enqueue the three trajectory runs before printing Fig. 6(a)
    // so they overlap with the table work under a parallel runner.
    auto curve = [&](ShadowMode mode) {
        SystemConfig cfg =
            withScheme(base, Scheme::Shadow, mode, 4, 3);
        return runner().submitTrace(cfg, trace);
    };
    auto rdF = curve(ShadowMode::RdOnly);
    auto hdF = curve(ShadowMode::HdOnly);
    auto dynF = curve(ShadowMode::DynamicPartition);

    Table a("Fig. 6(a) — sampled LLC miss intervals (cycles), "
            "averaged per 20 misses");
    a.header({"miss index", "mean interval"});
    for (std::size_t s = 0; s + 20 <= trace->size(); s += 20) {
        double sum = 0;
        for (std::size_t i = s; i < s + 20; ++i)
            sum += static_cast<double>((*trace)[i].computeGap);
        a.beginRow(std::to_string(s));
        a.cell(sum / 20.0, 0);
    }
    a.print();

    const auto &rd = rdF.get().missRetireTimes;
    const auto &hd = hdF.get().missRetireTimes;
    const auto &dyn = dynF.get().missRetireTimes;

    Table b("Fig. 6(b) — cumulative execution time (cycles) by LLC "
            "miss index");
    b.header({"miss index", "RD-Dup", "HD-Dup", "Dynamic"});
    for (std::size_t i = 19; i < misses; i += 20) {
        b.beginRow(std::to_string(i + 1));
        b.cell(static_cast<std::uint64_t>(rd[i]));
        b.cell(static_cast<std::uint64_t>(hd[i]));
        b.cell(static_cast<std::uint64_t>(dyn[i]));
    }
    b.print();

    std::printf("\nfinal execution time: RD %llu, HD %llu, dynamic "
                "%llu cycles\n",
                static_cast<unsigned long long>(rd.back()),
                static_cast<unsigned long long>(hd.back()),
                static_cast<unsigned long long>(dyn.back()));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
