/**
 * @file
 * Shared scaffolding for the figure/table reproduction benches.
 *
 * Every paper figure gets one binary that prints the same rows or
 * series the paper plots.  Environment knobs:
 *   SB_BENCH_MISSES  — misses simulated per run (default 8000, or
 *                      4000 in quick mode)
 *   SB_BENCH_QUICK   — set to 1 to cut workloads/misses for smoke
 *                      runs (CI)
 *   SB_BENCH_THREADS — worker threads for the experiment runner
 *                      (default: hardware concurrency; 1 forces the
 *                      sequential path)
 */

#ifndef SBORAM_BENCH_BENCHUTIL_HH
#define SBORAM_BENCH_BENCHUTIL_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ckpt/Checkpoint.hh"
#include "common/Errors.hh"
#include "common/Logging.hh"
#include "common/Stats.hh"
#include "common/Table.hh"
#include "common/Version.hh"
#include "obs/FlightRecorder.hh"
#include "obs/Observer.hh"
#include "sim/ExperimentRunner.hh"
#include "sim/System.hh"
#include "workload/SpecProfiles.hh"

namespace sboram::bench {

inline bool
quickMode()
{
    const char *q = std::getenv("SB_BENCH_QUICK");
    return q && q[0] == '1';
}

inline std::uint64_t
missesPerRun()
{
    static const std::uint64_t misses = []() -> std::uint64_t {
        const std::uint64_t fallback = quickMode() ? 4000 : 8000;
        const char *m = std::getenv("SB_BENCH_MISSES");
        if (!m)
            return fallback;
        errno = 0;
        char *end = nullptr;
        const unsigned long long v = std::strtoull(m, &end, 10);
        if (end == m || *end != '\0' || errno == ERANGE || v == 0) {
            SB_WARN("ignoring invalid SB_BENCH_MISSES='%s' (want a "
                    "positive integer); using %llu",
                    m, static_cast<unsigned long long>(fallback));
            return fallback;
        }
        return v;
    }();
    return misses;
}

/** Workload list for per-benchmark figures. */
inline std::vector<std::string>
benchWorkloads()
{
    if (quickMode())
        return {"mcf", "sjeng", "namd"};
    return specNames();
}

/** The default experimental platform (scaled Table I, DESIGN.md). */
inline SystemConfig
paperSystem()
{
    SystemConfig cfg;
    cfg.oram.dataBlocks = std::uint64_t(1) << 20;  // 64 MB data ORAM
    cfg.oram.slotsPerBucket = 5;
    cfg.oram.evictionRate = 5;
    cfg.oram.posMapMode = PosMapMode::Recursive;
    cfg.oram.plbBytes = 64 * 1024;
    cfg.oram.stashCapacity = 200;
    return cfg;
}

/** Workload seed shared across all benches. */
inline constexpr std::uint64_t kBenchSeed = 12345;

/** Named scheme points used across figures. */
inline SystemConfig
withScheme(SystemConfig base, Scheme scheme,
           ShadowMode mode = ShadowMode::DynamicPartition,
           unsigned staticLevel = 7, unsigned driBits = 3)
{
    base.scheme = scheme;
    base.shadow.mode = mode;
    base.shadow.staticLevel = staticLevel;
    base.shadow.driCounterBits = driBits;
    return base;
}

/** The process-wide experiment runner all benches share. */
inline ExperimentRunner &
runner()
{
    return ExperimentRunner::global();
}

/**
 * Enqueue one (config, workload) point with the shared trace seed.
 * Benches submit every point of a figure first, then get() the
 * futures in print order, so output is byte-identical to a
 * sequential run regardless of SB_BENCH_THREADS.
 */
inline Future<RunMetrics>
submitPoint(const SystemConfig &cfg, const std::string &workload)
{
    return runner().submit(cfg, workload, missesPerRun(), kBenchSeed);
}

/**
 * get() with a health check: a run that overflowed the stash produced
 * numbers from a broken protocol state, so the bench output must say
 * so instead of silently printing them (the row is still printed —
 * the warning names the point so it can be rerun at a larger M).
 */
inline const RunMetrics &
getChecked(const Future<RunMetrics> &future, const std::string &label)
{
    const RunMetrics &m = future.get();
    if (m.stashOverflows > 0) {
        SB_WARN("%s: stash overflowed %llu times (peak %llu reals) — "
                "results suspect; rerun with a larger stashCapacity",
                label.c_str(),
                static_cast<unsigned long long>(m.stashOverflows),
                static_cast<unsigned long long>(m.stashPeakReal));
    }
    return m;
}

/** Run one (config, workload) point synchronously (legacy helper). */
inline RunMetrics
runPoint(const SystemConfig &cfg, const std::string &workload)
{
    return submitPoint(cfg, workload).get();
}

/**
 * Paper-style normalized Data/Interval decomposition of a run,
 * normalized to a baseline's total execution time (Figs. 8/9/10/13/14).
 */
struct NormalizedTime
{
    double data = 0.0;
    double interval = 0.0;
    double total = 0.0;
};

inline NormalizedTime
normalize(const RunMetrics &m, const RunMetrics &base)
{
    NormalizedTime n;
    const double ref = static_cast<double>(base.execTime);
    n.data = m.dataAccessTime / ref;
    n.interval = m.driTime / ref;
    n.total = static_cast<double>(m.execTime) / ref;
    return n;
}

/**
 * Print the one-line machine-readable failure record for a dead
 * bench.  The thread-local panicDiag() is preferred when the failing
 * thread registered one, but futures rethrow on the *caller's*
 * thread, whose slot is usually empty — so every classified error
 * supplies a @p fallback synthesized from its structured fields.
 * The line is always emitted on a fatal exit (not only under
 * SB_PANIC) so harnesses can classify any dead process.
 *
 * Every line unconditionally carries the service-forensics fields
 * (pressure latch, degraded latch, last watchdog tick) — cheap,
 * always current, and exactly the context a post-mortem wants first.
 * When the failing run handed its flight ring to the panic slot, a
 * second `panic-flight:` line dumps the last control events in full.
 */
inline void
emitPanicDiag(const std::string &fallback)
{
    const std::string &diag = panicDiag();
    std::fprintf(stderr, "panic-diag: %s%s\n",
                 diag.empty() ? fallback.c_str() : diag.c_str(),
                 obs::forensicsSuffix().c_str());
    const std::string flight = obs::panicFlight();
    if (!flight.empty())
        std::fprintf(stderr, "panic-flight: %s\n", flight.c_str());
}

/**
 * Standard bench entry point.  Validates SB_CKPT_DIR up front (an
 * unusable directory is a one-line diagnostic and a nonzero exit, not
 * a hang into ENOSPC mid-sweep), installs SIGINT/SIGTERM checkpoint
 * handlers when checkpointing is active, and classifies the expected
 * exception families onto conventional exit codes:
 *   130 — interrupted (final snapshot already on disk; resume it),
 *   kRetryExhaustedExitCode (3) — a point spent its retry budget,
 *   kFatalExitCode (2) — corruption, invariant violation, a stalled
 *       service scheduler, or any other simulator error.
 * Every fatal path emits one machine-readable `panic-diag:` line.
 */
inline int
guardedMain(int (*body)())
{
    try {
        if (ckpt::activeDirectory() != nullptr)
            ckpt::installStopHandlers();
        return body();
    } catch (const InterruptedError &e) {
        std::fprintf(stderr,
                     "interrupted: %s; rerun with the same SB_CKPT_DIR "
                     "to resume\n",
                     e.what());
        return 130;
    } catch (const RetryBudgetExhaustedError &e) {
        std::fprintf(stderr, "retry budget exhausted: %s\n", e.what());
        emitPanicDiag(strprintf(
            "event=retry_exhausted label=%s attempts=%u slept_ms=%llu",
            e.label().c_str(), e.attempts(),
            static_cast<unsigned long long>(e.sleptMs())));
        return kRetryExhaustedExitCode;
    } catch (const CorruptionError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        emitPanicDiag(strprintf(
            "event=corruption access=%llu bucket=%llu level=%u "
            "recovered=0",
            static_cast<unsigned long long>(e.accessCount()),
            static_cast<unsigned long long>(e.bucket()), e.level()));
        return kFatalExitCode;
    } catch (const InvariantViolationError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        emitPanicDiag(strprintf(
            "event=invariant_violation access=%llu",
            static_cast<unsigned long long>(e.accessCount())));
        return kFatalExitCode;
    } catch (const ServiceStallError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        emitPanicDiag(strprintf(
            "event=service_stall queue_depth=%llu in_flight=%llu "
            "shed=%llu deadline_misses=%llu served=%llu",
            static_cast<unsigned long long>(e.queueDepth()),
            static_cast<unsigned long long>(e.inFlight()),
            static_cast<unsigned long long>(e.requestsShed()),
            static_cast<unsigned long long>(e.deadlineMisses()),
            static_cast<unsigned long long>(e.served())));
        return kFatalExitCode;
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        emitPanicDiag("event=sim_error");
        return kFatalExitCode;
    }
}

/** JSON string escaping for the manifest writer. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Basename of argv[0] without directories ("fig10_dri_counter_width"). */
inline std::string
benchName(const char *argv0)
{
    std::string name = argv0 ? argv0 : "bench";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    return name.empty() ? "bench" : name;
}

/**
 * Write manifest-<bench>.json: the machine-readable record of a bench
 * invocation — tree revision, experiment knobs, wall time, and every
 * observability artifact the run produced.  One manifest per binary
 * (not a shared manifest.json) so concurrent ctest invocations never
 * clobber each other.
 */
inline void
writeManifest(const std::string &dir, const std::string &bench,
              int argc, char **argv, int exitCode,
              std::uint64_t wallUs)
{
    std::string j = "{\n";
    j += "  \"bench\": \"" + jsonEscape(bench) + "\",\n";
    j += "  \"argv\": [";
    for (int i = 0; i < argc; ++i) {
        if (i)
            j += ", ";
        j += "\"" + jsonEscape(argv[i]) + "\"";
    }
    j += "],\n";
    j += "  \"git_describe\": \"" + jsonEscape(kGitDescribe) + "\",\n";
    j += "  \"exit_code\": " + std::to_string(exitCode) + ",\n";
    j += "  \"wall_seconds\": " +
         std::to_string(static_cast<double>(wallUs) / 1e6) + ",\n";
    j += "  \"config\": {\n";
    j += "    \"misses\": " + std::to_string(missesPerRun()) + ",\n";
    j += "    \"seed\": " + std::to_string(kBenchSeed) + ",\n";
    j += "    \"quick\": " +
         std::string(quickMode() ? "true" : "false") + ",\n";
    j += "    \"threads\": " +
         std::to_string(ExperimentRunner::defaultThreads()) + ",\n";
    const std::string *ckptDir = ckpt::activeDirectory();
    j += "    \"ckpt_dir\": " +
         (ckptDir ? "\"" + jsonEscape(*ckptDir) + "\""
                  : std::string("null")) + ",\n";
    j += "    \"schemes\": \"per point; see artifact labels\"\n";
    j += "  },\n";
    j += "  \"artifacts\": [";
    bool first = true;
    for (const std::string &path : obs::artifactLog()) {
        j += first ? "\n    \"" : ",\n    \"";
        j += jsonEscape(path) + "\"";
        first = false;
    }
    j += first ? "]\n" : "\n  ]\n";
    j += "}\n";

    const std::string path = dir + "/manifest-" + bench + ".json";
    if (!obs::writeTextFile(path, j))
        SB_WARN("cannot write %s", path.c_str());
}

/**
 * Argument-aware bench entry point: guardedMain plus
 *   --obs-dir <dir>   redirect SB_OBS_* artifacts and the manifest
 * Writes manifest-<bench>.json and (when any run was observed) the
 * wall-clock runner-lane trace after the body finishes.
 */
inline int
guardedMain(int argc, char **argv, int (*body)())
{
    std::string obsDir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--obs-dir" && i + 1 < argc) {
            obsDir = argv[++i];
        } else if (arg.rfind("--obs-dir=", 0) == 0) {
            obsDir = arg.substr(10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--obs-dir DIR]\n"
                         "unknown argument: %s\n",
                         argv[0], arg.c_str());
            return 2;
        }
    }
    if (!obsDir.empty())
        obs::setDirOverride(obsDir);

    const std::uint64_t t0 = obs::wallMicros();
    const int code = guardedMain(body);
    const std::string dir = obsDir.empty() ? "." : obsDir;
    obs::writeRunnerTrace(dir + "/trace-runner.json");
    // Flight-recorder artifact: every published ring dump, plus the
    // panic dump when the run died (a clean exit keeps its artifact
    // free of the "panic" key so harnesses can grep for it).
    const std::string flightArtifact =
        obs::renderFlightArtifact(code != 0);
    if (!flightArtifact.empty()) {
        const std::string flightPath =
            dir + "/flightrec-" + benchName(argv[0]) + ".json";
        if (obs::writeTextFile(flightPath, flightArtifact))
            obs::recordArtifact(flightPath);
        else
            SB_WARN("cannot write %s", flightPath.c_str());
    }
    writeManifest(dir, benchName(argv[0]), argc, argv, code,
                  obs::wallMicros() - t0);
    return code;
}

} // namespace sboram::bench

#endif // SBORAM_BENCH_BENCHUTIL_HH
