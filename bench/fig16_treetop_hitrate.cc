/**
 * @file
 * Fig. 16 — on-chip hit rate (stash + treetop cache) with treetop-3
 * and treetop-7 caching, with and without shadow blocks.  Shadow
 * copies stored in the dummy slots of on-chip tree levels turn nonce
 * storage into useful cache capacity; the paper measures ~2.2x higher
 * hit rates.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;  // Matches the paper's Section VI-D.

    Table t("Fig. 16 — on-chip hit rate of stash + treetop caching");
    t.header({"workload", "treetop-3", "SB+treetop-3", "treetop-7",
              "SB+treetop-7"});

    std::vector<std::vector<Future<RunMetrics>>> rows;
    for (const std::string &wl : benchWorkloads()) {
        auto point = [&](unsigned levels, bool shadow) {
            SystemConfig cfg = withScheme(
                base, shadow ? Scheme::Shadow : Scheme::Tiny,
                ShadowMode::DynamicPartition, 4, 3);
            cfg.oram.treetopLevels = levels;
            return submitPoint(cfg, wl);
        };
        rows.push_back({point(3, false), point(3, true),
                        point(7, false), point(7, true)});
    }

    std::vector<double> t3, s3, t7, s7;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        std::vector<Future<RunMetrics>> &row = rows[rowIdx++];
        const double a = row[0].get().onChipHitRate;
        const double b = row[1].get().onChipHitRate;
        const double c = row[2].get().onChipHitRate;
        const double d = row[3].get().onChipHitRate;
        t.beginRow(wl);
        t.cell(a);
        t.cell(b);
        t.cell(c);
        t.cell(d);
        t3.push_back(a);
        s3.push_back(b);
        t7.push_back(c);
        s7.push_back(d);
    }
    t.beginRow("mean");
    t.cell(amean(t3));
    t.cell(amean(s3));
    t.cell(amean(t7));
    t.cell(amean(s7));
    t.print();

    std::printf("\npaper: shadow block raises the hit rate to 2.20x "
                "(treetop-3) and 2.17x (treetop-7)\n");
    std::printf("measured: %.2fx (treetop-3), %.2fx (treetop-7)\n",
                amean(s3) / std::max(amean(t3), 1e-9),
                amean(s7) / std::max(amean(t7), 1e-9));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
