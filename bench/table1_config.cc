/**
 * @file
 * Table I reproduction + Section V-C hardware overhead accounting:
 * prints the full experimental configuration, the derived ORAM
 * geometry (paper scale and simulated scale), the measured path
 * access latency, and the storage/logic overhead of the shadow block
 * hardware.
 */

#include <cstdio>

#include "BenchUtil.hh"
#include "mem/DramModel.hh"
#include "oram/TinyOram.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

void
geometryRows(Table &t, const char *label, OramConfig cfg)
{
    const OramGeometry geo = OramGeometry::derive(cfg);
    t.beginRow(std::string(label) + " data blocks");
    t.cell(cfg.dataBlocks);
    t.beginRow(std::string(label) + " total blocks (with posmap)");
    t.cell(geo.totalBlocks);
    t.beginRow(std::string(label) + " tree levels (L)");
    t.cell(static_cast<std::uint64_t>(geo.leafLevel));
    t.beginRow(std::string(label) + " buckets");
    t.cell(geo.numBuckets);
    t.beginRow(std::string(label) + " DRAM footprint (MB)");
    t.cell(static_cast<double>(geo.numSlots * cfg.blockBytes) /
               (1024.0 * 1024.0),
           1);
    // Section V-C: 1 shadow bit per block slot.
    t.beginRow(std::string(label) + " shadow-bit overhead (MB)");
    t.cell(static_cast<double>(geo.numSlots) / 8.0 /
               (1024.0 * 1024.0),
           3);
}

} // namespace

static int
runBench()
{
    Table cfgTable("Table I — processor and memory configuration");
    cfgTable.header({"parameter", "value"});
    cfgTable.row({"core (default)", "in-order single-core, 2 GHz"});
    cfgTable.row({"core (Fig. 18)", "out-of-order, 4 cores, window 8"});
    cfgTable.row({"data block size", "64 B"});
    cfgTable.row({"slots per bucket (Z)", "5"});
    cfgTable.row({"eviction rate (A)", "5"});
    cfgTable.row({"DRAM utilization", "50%"});
    cfgTable.row({"PLB", "64 KB"});
    cfgTable.row({"AES-128 latency", "32 cycles"});
    cfgTable.row({"memory", "DDR3-1333, 2 channels, 21.3 GB/s"});
    cfgTable.row({"hot address cache", "1 KB (128 entries, 4-way)"});
    cfgTable.print();

    Table geo("Derived ORAM geometry");
    geo.header({"quantity", "value"});

    OramConfig paper;
    paper.dataBlocks = std::uint64_t(1) << 26;  // 4 GB
    geometryRows(geo, "paper (4GB)", paper);

    OramConfig scaled = paperSystem().oram;
    geometryRows(geo, "simulated (64MB)", scaled);
    geo.print();

    // Measured path latency at the simulated scale.
    DramModel dram(DramTiming::ddr3_1333(), DramGeometry{});
    TinyOram oram(scaled, dram);
    const Cycles pathLat = oram.estimatePathReadLatency();

    Table derived("Measured platform characteristics");
    derived.header({"quantity", "value"});
    derived.beginRow("path read latency (cycles)");
    derived.cell(static_cast<std::uint64_t>(pathLat));
    derived.beginRow("blocks per path read");
    derived.cell(static_cast<std::uint64_t>(
        (oram.geometry().leafLevel + 1) * scaled.slotsPerBucket));
    derived.beginRow("timing-protection slot (auto, cycles)");
    derived.cell(static_cast<std::uint64_t>(
        pathLat + 2 * pathLat / scaled.evictionRate));
    derived.print();

    Table overhead("Section V-C — shadow block hardware overhead");
    overhead.header({"structure", "size"});
    overhead.row({"shadow bit (per 64B block)", "1 bit"});
    overhead.row({"hot address cache", "1 KB SRAM"});
    overhead.row({"RD-queue + HD-queue",
                  "~13,000 gates (95 entries x 2, comparator trees)"});
    overhead.row({"partitioning level register", "5 bits"});
    overhead.row({"DRI counter register", "3 bits (best width)"});
    overhead.print();
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
