/**
 * @file
 * Fig. 10 — dynamic partitioning: normalized access time vs the
 * width of the DRI counter (1..8 bits).  Short counters chase noise,
 * long ones adapt too slowly; the paper finds 3 bits optimal.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = false;

    const std::vector<unsigned> widths{1, 2, 3, 4, 5, 6, 7, 8};
    const auto spotlights = quickMode()
        ? std::vector<std::string>{"sjeng", "namd"}
        : std::vector<std::string>{"sjeng", "h264ref", "namd"};

    Table t("Fig. 10 — dynamic partitioning vs DRI counter width");
    std::vector<std::string> header{"series"};
    for (unsigned w : widths)
        header.push_back(std::to_string(w) + "-bit");
    t.header(header);

    struct Row
    {
        Future<RunMetrics> tiny;
        std::vector<Future<RunMetrics>> widths;
    };
    auto submitRow = [&](const std::string &wl) {
        Row row;
        row.tiny = submitPoint(withScheme(base, Scheme::Tiny), wl);
        for (unsigned w : widths)
            row.widths.push_back(submitPoint(
                withScheme(base, Scheme::Shadow,
                           ShadowMode::DynamicPartition, 7, w),
                wl));
        return row;
    };
    std::vector<Row> spotRows, gmeanRows;
    for (const std::string &wl : spotlights)
        spotRows.push_back(submitRow(wl));
    for (const std::string &wl : benchWorkloads())
        gmeanRows.push_back(submitRow(wl));

    for (std::size_t r = 0; r < spotlights.size(); ++r) {
        const std::string &wl = spotlights[r];
        const RunMetrics tiny = spotRows[r].tiny.get();
        std::vector<NormalizedTime> points;
        for (Future<RunMetrics> &f : spotRows[r].widths)
            points.push_back(normalize(f.get(), tiny));
        t.beginRow(wl + " Interval");
        for (const NormalizedTime &n : points)
            t.cell(n.interval);
        t.beginRow(wl + " Data");
        for (const NormalizedTime &n : points)
            t.cell(n.data);
        t.beginRow(wl + " Total");
        for (const NormalizedTime &n : points)
            t.cell(n.total);
    }

    std::vector<std::vector<double>> totals(widths.size());
    for (Row &row : gmeanRows) {
        const RunMetrics tiny = row.tiny.get();
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const RunMetrics m = row.widths[i].get();
            totals[i].push_back(static_cast<double>(m.execTime) /
                                static_cast<double>(tiny.execTime));
        }
    }
    t.beginRow("Gmean Total");
    double best = 1e300;
    unsigned bestWidth = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const double g = gmean(totals[i]);
        t.cell(g);
        if (g < best) {
            best = g;
            bestWidth = widths[i];
        }
    }
    t.print();

    std::printf("\npaper: 3-bit counter is best (80%% of Tiny)\n");
    std::printf("measured: %u-bit best (%.3f of Tiny)\n", bestWidth,
                best);
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
