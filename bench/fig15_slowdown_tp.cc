/**
 * @file
 * Fig. 15 — slowdown over the insecure system WITH timing
 * protection: Tiny ORAM, static-4 and dynamic-3.  The paper's
 * headline: static partitioning cuts 30% and dynamic partitioning
 * 32% of the execution time vs Tiny ORAM.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    Table t("Fig. 15 — slowdown vs insecure system (with timing "
            "protection)");
    t.header({"workload", "Tiny", "static-4", "dynamic-3",
              "insecure"});

    struct Row
    {
        Future<RunMetrics> ins, tiny, st4, dyn3;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads())
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Insecure), wl),
             submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::StaticPartition, 4),
                         wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::DynamicPartition, 4,
                                    3),
                         wl)});

    std::vector<double> tinyS, st4S, dyn3S;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics ins = getChecked(row.ins, wl + "/ins");
        const RunMetrics tiny = getChecked(row.tiny, wl + "/tiny");
        const RunMetrics st4 = getChecked(row.st4, wl + "/st4");
        const RunMetrics dyn3 = getChecked(row.dyn3, wl + "/dyn3");

        const double insT = static_cast<double>(ins.execTime);
        t.beginRow(wl);
        t.cell(static_cast<double>(tiny.execTime) / insT, 2);
        t.cell(static_cast<double>(st4.execTime) / insT, 2);
        t.cell(static_cast<double>(dyn3.execTime) / insT, 2);
        t.cell(1.0, 2);
        tinyS.push_back(static_cast<double>(tiny.execTime) / insT);
        st4S.push_back(static_cast<double>(st4.execTime) / insT);
        dyn3S.push_back(static_cast<double>(dyn3.execTime) / insT);
    }
    t.beginRow("gmean");
    t.cell(gmean(tinyS), 2);
    t.cell(gmean(st4S), 2);
    t.cell(gmean(dyn3S), 2);
    t.cell(1.0, 2);
    t.print();

    std::printf("\npaper: static-4 cuts 30%%, dynamic-3 cuts 32%% of "
                "Tiny's execution time\n");
    std::printf("measured: static-4 cuts %.0f%%, dynamic-3 cuts "
                "%.0f%%\n",
                100.0 * (1.0 - gmean(st4S) / gmean(tinyS)),
                100.0 * (1.0 - gmean(dyn3S) / gmean(tinyS)));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
