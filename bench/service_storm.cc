/**
 * @file
 * Service storm — the online request pipeline under open-loop load.
 *
 * Where chaos_storm drives the recovery ladder with a closed-loop
 * trace, this harness puts the service layer (src/svc) in front of
 * the controller and feeds it open-loop arrival streams: a steady
 * Poisson baseline, an on/off burst drill that transiently exceeds
 * the drain rate, a diurnal day/night swing, and a full storm that
 * combines bursty overload with payload faults and the armed
 * quarantine ladder.  Every profile runs against every duplication
 * policy.
 *
 * Per point the harness reports the arrival-to-completion latency
 * distribution (exact nearest-rank p50/p99/p999 over virtual cycles),
 * dedup fan-out, shadow early completions, backpressure cycling and
 * the structured shed counts.  Availability must be 1.0 everywhere:
 * the pipeline's contract is that every request reaches a terminal
 * outcome (completed or shed with a reason) — a watchdog trip or a
 * lost request is a harness failure, not a data point.
 *
 * Results land in BENCH_latency.json next to the binary; every point
 * runs twice and the passes must agree on an outcome fingerprint.
 * The JSON contains no wall-clock values: it is byte-identical at any
 * SB_BENCH_THREADS.  A checksum regression guard compares against the
 * committed bench/BENCH_latency.json (SB_BENCH_REGRESSION=0 disables,
 * SB_BENCH_BASELINE points elsewhere).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "BenchUtil.hh"
#include "ckpt/Serde.hh"
#include "obs/Observer.hh"
#include "obs/RequestTrace.hh"
#include "svc/Service.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

/** Functional-scale service point: small tree, on-chip position map,
 *  hot Zipf address space feeding dedup and shadow forwarding. */
svc::ServiceConfig
serviceBase()
{
    svc::ServiceConfig cfg;
    cfg.oram.dataBlocks = std::uint64_t(1) << 12;
    cfg.oram.posMapMode = PosMapMode::OnChip;
    cfg.oram.stashCapacity = 200;
    cfg.arrivals.addressBlocks = std::uint64_t(1) << 10;
    cfg.arrivals.zipfAlpha = 1.0;
    cfg.arrivals.writeFraction = 0.2;
    cfg.arrivals.seed = kBenchSeed;
    cfg.queueCapacity = 64;
    cfg.queueHighWatermark = 48;
    cfg.queueLowWatermark = 16;
    cfg.deadline = 150'000;
    cfg.maxRetries = 2;
    cfg.retryBackoffCycles = 2'000;
    return cfg;
}

/** One load profile: arrival shape + service knobs layered on the
 *  base point. */
struct Profile
{
    const char *name;
    ArrivalConfig arrivals;  ///< Shape fields; base fills the rest.
    Cycles deadline = 0;     ///< Nonzero: override the base deadline.
    bool faults = false;     ///< Storm only: payload faults + ladder.
};

std::vector<Profile>
makeProfiles()
{
    std::vector<Profile> profiles;
    {
        // Under-loaded Poisson baseline: the latency floor.
        ArrivalConfig a;
        a.kind = ArrivalKind::Poisson;
        a.meanGapCycles = 3000.0;
        profiles.push_back({"steady", a});
    }
    {
        // On/off overload: bursts arrive ~6x faster than the drain
        // rate, so the queue saturates, backpressure latches and the
        // deadline ladder sheds — then the off phase drains.
        ArrivalConfig a;
        a.kind = ArrivalKind::Bursty;
        a.meanGapCycles = 1800.0;
        a.burstFactor = 6.0;
        a.burstOnCycles = 120'000;
        a.burstOffCycles = 360'000;
        profiles.push_back({"burst", a});
    }
    {
        // Day/night swing: load crosses the service rate smoothly
        // twice per period instead of square-wave slamming it.
        ArrivalConfig a;
        a.kind = ArrivalKind::Diurnal;
        a.meanGapCycles = 1600.0;
        a.diurnalPeriodCycles = 1'200'000;
        a.diurnalTroughFactor = 0.2;
        profiles.push_back({"diurnal", a});
    }
    {
        // Full storm: bursty overload with payload corruption landing
        // while the queue is saturated, quarantine armed, and a tight
        // deadline — overload shedding and fault recovery at once.
        ArrivalConfig a;
        a.kind = ArrivalKind::Bursty;
        a.meanGapCycles = 1500.0;
        a.burstFactor = 8.0;
        a.burstOnCycles = 150'000;
        a.burstOffCycles = 250'000;
        profiles.push_back({"storm", a, 60'000, true});
    }
    return profiles;
}

struct Policy
{
    const char *name;
    Scheme scheme;
    ShadowMode mode;
};

const std::vector<Policy> &
policies()
{
    static const std::vector<Policy> kPolicies = {
        {"tiny", Scheme::Tiny, ShadowMode::RdOnly},
        {"rd", Scheme::Shadow, ShadowMode::RdOnly},
        {"hd", Scheme::Shadow, ShadowMode::HdOnly},
        {"dynamic", Scheme::Shadow, ShadowMode::DynamicPartition},
    };
    return kPolicies;
}

/** Result of one pipeline run. */
struct PointOutcome
{
    bool stalled = false;  ///< Liveness watchdog fired.
    svc::ServiceStats s;
};

/**
 * Deterministic digest of one outcome — the two passes must agree on
 * it, and the XOR over pass-0 digests is the artifact checksum the
 * regression guard pins.  Covers the latency distribution, every
 * terminal-outcome counter, the backpressure cycle count and the
 * externally visible access totals.
 */
std::uint64_t
outcomeFingerprint(const PointOutcome &o)
{
    if (o.stalled)
        return 0x57a11ULL;
    const svc::ServiceStats &s = o.s;
    std::uint64_t h =
        s.finishTime + s.completed * 31 + s.requestsShed * 37 +
        s.shedAdmission * 41 + s.shedDeadline * 43 +
        s.dedupJoins * 7 + s.shadowEarlyCompletions * 11 +
        s.retries * 13 + s.deadlineMisses * 17 +
        s.maxQueueDepth * 19 + s.backpressureEntries * 23 +
        s.issuedAccesses * 29 + s.latencyP50 * 3 +
        s.latencyP99 * 5 + s.latencyP999 * 53 + s.latencyMax * 59 +
        s.oram.pathReads * 61 + s.oram.shadowForwards * 67 +
        s.oram.faultsDetected * 71 + s.oram.faultsRecovered * 73 +
        s.oram.faultsUnrecoverable * 79;
    // Attribution and observability outputs are part of the outcome:
    // the two passes must agree on the stage cuts, the SLO verdicts
    // and the exemplar/flight artifacts byte-for-byte.
    h += s.stageBalanceViolations * 83 + s.sloWindows * 89 +
         s.sloBreaches * 97 + s.sloWorstBurnMilli * 101;
    for (std::size_t i = 0; i < obs::kStageIdCount; ++i)
        h += s.stages[i].total * (103 + 2 * i) +
             s.stages[i].count * (131 + 2 * i) +
             s.stages[i].p999 * (151 + 2 * i);
    h ^= ckpt::fnv1a(reinterpret_cast<const std::uint8_t *>(
                         s.exemplarsJsonl.data()),
                     s.exemplarsJsonl.size());
    h ^= ckpt::fnv1a(
        reinterpret_cast<const std::uint8_t *>(s.flightJson.data()),
        s.flightJson.size(), 0x9e3779b97f4a7c15ULL);
    return h;
}

/** Run one point.  Self-contained for defer(): capture by value.  A
 *  watchdog trip is recorded, not rethrown — the bench reports it as
 *  the availability loss it is and fails the run at the end. */
PointOutcome
runPoint(svc::ServiceConfig cfg)
{
    PointOutcome out;
    try {
        out.s = svc::runService(cfg);
    } catch (const ServiceStallError &) {
        out.stalled = true;
    }
    return out;
}

/** Checksum regression guard against the committed baseline.  Unlike
 *  perf_smoke there is no wall-time bound: BENCH_latency.json holds
 *  only virtual-time results, so any drift is a semantic change. */
int
checkRegression(std::uint64_t checksum)
{
    // sblint:allow-next-line(ambient-nondeterminism): guard on/off switch; simulated results never depend on it
    if (const char *onOff = std::getenv("SB_BENCH_REGRESSION")) {
        if (onOff[0] == '0') {
            std::printf("regression guard disabled "
                        "(SB_BENCH_REGRESSION=0)\n");
            return 0;
        }
    }
    // sblint:allow-next-line(ambient-nondeterminism): baseline file location, not an experiment knob
    const char *env = std::getenv("SB_BENCH_BASELINE");
    const std::string path =
        env ? env : std::string(SB_BENCH_BASELINE_DEFAULT);
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "service_storm: no baseline at %s — regression "
                     "guard skipped\n",
                     path.c_str());
        return 0;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();
    const std::string needle = "\"checksum\": \"";
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos) {
        std::fprintf(stderr,
                     "service_storm: baseline %s has no checksum — "
                     "regression guard skipped\n",
                     path.c_str());
        return 0;
    }
    const std::uint64_t base = std::strtoull(
        doc.c_str() + at + needle.size(), nullptr, 16);
    if (base != checksum) {
        std::fprintf(stderr,
                     "service_storm: checksum %llx differs from "
                     "baseline %llx — latency results changed\n",
                     static_cast<unsigned long long>(checksum),
                     static_cast<unsigned long long>(base));
        return 1;
    }
    std::printf("regression guard: checksum matches %s\n",
                path.c_str());
    return 0;
}

} // namespace

static int
runBench()
{
    const std::vector<Profile> profiles = makeProfiles();
    // Arrival count is an experiment parameter: the burst/diurnal
    // phase lengths are sized for 3000-request runs.  SB_BENCH_MISSES
    // still overrides for scaling studies (the determinism gate holds
    // at any length).
    const std::uint64_t requests =
        // sblint:allow-next-line(ambient-nondeterminism): presence check only selects the documented default run length
        std::getenv("SB_BENCH_MISSES") ? missesPerRun() : 3000;

    std::printf("service_storm: %llu requests per point\n",
                static_cast<unsigned long long>(requests));

    // Submit every (profile, policy) twice: pass 0 is the result,
    // pass 1 the determinism oracle.  All futures enqueue up front;
    // results are read in submission order, so the output is
    // byte-identical at any SB_BENCH_THREADS.
    struct Slot
    {
        Future<PointOutcome> pass[2];
    };
    std::vector<Slot> slots;
    for (const Profile &profile : profiles) {
        for (const Policy &policy : policies()) {
            svc::ServiceConfig cfg = serviceBase();
            cfg.scheme = policy.scheme;
            cfg.shadow.mode = policy.mode;
            ArrivalConfig a = profile.arrivals;
            a.addressBlocks = cfg.arrivals.addressBlocks;
            a.zipfAlpha = cfg.arrivals.zipfAlpha;
            a.writeFraction = cfg.arrivals.writeFraction;
            a.seed = cfg.arrivals.seed;
            cfg.arrivals = a;
            cfg.requests = requests;
            if (profile.deadline)
                cfg.deadline = profile.deadline;
            // SLO: a request is good iff it completes within the
            // point's deadline; windows/thresholds keep the SloConfig
            // defaults.  Deterministic — pure function of the config.
            cfg.slo.latencyBound = cfg.deadline;
            if (profile.faults) {
                // Fail-operational: duplication heals what it can,
                // quarantine retires repeat offenders, and a loss
                // with no intact copy is counted and zero-filled —
                // the service stays up either way (the svc layer has
                // no rollback tier; Count is its terminal outcome).
                cfg.oram.payloadEnabled = true;
                cfg.oram.fault.rate = 1e-3;
                cfg.oram.fault.seed = 7;
                cfg.oram.fault.onUnrecoverable =
                    UnrecoverablePolicy::Count;
                cfg.oram.health.quarantineThreshold = 2;
            }
            Slot slot;
            for (unsigned pass = 0; pass < 2; ++pass)
                slot.pass[pass] =
                    runner().defer([cfg] { return runPoint(cfg); });
            slots.push_back(slot);
        }
    }

    Table t("Service storm — open-loop latency under load");
    t.header({"profile", "policy", "avail", "p50", "p99", "p999",
              "dedup", "early", "shed", "bp-in", "maxq"});

    struct Row
    {
        const char *profile;
        const char *policy;
        PointOutcome o;
    };
    std::vector<Row> rows;
    bool deterministic = true;
    std::uint64_t watchdogTrips = 0;
    std::uint64_t stormShed = 0;
    std::uint64_t checksum = 0;
    bool lost = false;
    std::size_t slotIdx = 0;
    for (const Profile &profile : profiles) {
        for (const Policy &policy : policies()) {
            const Slot &slot = slots[slotIdx++];
            const PointOutcome &o0 = slot.pass[0].get();
            const PointOutcome &o1 = slot.pass[1].get();
            if (outcomeFingerprint(o0) != outcomeFingerprint(o1)) {
                std::fprintf(stderr,
                             "service_storm: %s/%s outcomes differ "
                             "between passes — the scheduler is "
                             "nondeterministic\n",
                             profile.name, policy.name);
                deterministic = false;
            }
            checksum ^= outcomeFingerprint(o0);
            if (o0.stalled)
                ++watchdogTrips;
            if (o0.s.availability() < 1.0)
                lost = true;
            if (std::string(profile.name) == "storm")
                stormShed += o0.s.requestsShed;
            rows.push_back({profile.name, policy.name, o0});
            t.beginRow(profile.name);
            t.cell(policy.name);
            t.cell(o0.s.availability(), 2);
            t.cell(static_cast<std::uint64_t>(o0.s.latencyP50));
            t.cell(static_cast<std::uint64_t>(o0.s.latencyP99));
            t.cell(static_cast<std::uint64_t>(o0.s.latencyP999));
            t.cell(o0.s.dedupJoins);
            t.cell(o0.s.shadowEarlyCompletions);
            t.cell(o0.s.requestsShed);
            t.cell(o0.s.backpressureEntries);
            t.cell(o0.s.maxQueueDepth);
        }
    }
    t.print();
    std::printf(
        "\navailability 1.00 means every arrival reached a terminal "
        "outcome — completed or shed with a reason; the storm row "
        "shedding under a tight deadline while the queue stays "
        "bounded is the overload contract working, and the "
        "duplicating policies beating tiny on p99 is the paper's "
        "forwarding argument measured as tail latency\n");

    // Tail attribution: the same completions, cut per causal stage —
    // this is the "where does p999 live" table.  Every row's stage
    // totals sum exactly to its measured latency (the balance gate
    // below fails the bench otherwise).
    Table at("Tail attribution — per-stage latency decomposition");
    at.header({"profile", "policy", "stage", "count", "p50", "p99",
               "p999", "max"});
    std::uint64_t balanceViolations = 0;
    std::uint64_t sloBreachTotal = 0;
    for (const Row &row : rows) {
        balanceViolations += row.o.s.stageBalanceViolations;
        sloBreachTotal += row.o.s.sloBreaches;
        for (std::size_t i = 0; i < obs::kStageIdCount; ++i) {
            const obs::StageCut &cut = row.o.s.stages[i];
            if (cut.count == 0)
                continue;
            at.beginRow(row.profile);
            at.cell(row.policy);
            at.cell(obs::stageName(static_cast<obs::StageId>(i)));
            at.cell(cut.count);
            at.cell(static_cast<std::uint64_t>(cut.p50));
            at.cell(static_cast<std::uint64_t>(cut.p99));
            at.cell(static_cast<std::uint64_t>(cut.p999));
            at.cell(static_cast<std::uint64_t>(cut.max));
        }
    }
    at.print();
    if (balanceViolations != 0) {
        std::fprintf(stderr,
                     "service_storm: %llu completion(s) whose stage "
                     "totals do not sum to the measured latency — the "
                     "attribution is lying\n",
                     static_cast<unsigned long long>(
                         balanceViolations));
        return 1;
    }
    std::printf("stage-balance: ok (every completion's stage totals "
                "sum to its latency)\n");
    std::printf("slo: %llu burn-rate breach(es) across all points "
                "(deadline-bound objective, default windows)\n",
                static_cast<unsigned long long>(sloBreachTotal));

    if (FILE *f = std::fopen("BENCH_latency.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"service_storm\",\n"
                     "  \"requests_per_point\": %llu,\n"
                     "  \"deterministic\": %s,\n"
                     "  \"watchdog_trips\": %llu,\n"
                     "  \"checksum\": \"%llx\",\n"
                     "  \"points\": [\n",
                     static_cast<unsigned long long>(requests),
                     deterministic ? "true" : "false",
                     static_cast<unsigned long long>(watchdogTrips),
                     static_cast<unsigned long long>(checksum));
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const svc::ServiceStats &s = rows[i].o.s;
            std::fprintf(
                f,
                "    {\"profile\": \"%s\", \"policy\": \"%s\", "
                "\"availability\": %.4f, "
                "\"completed\": %llu, \"shed\": %llu, "
                "\"shed_admission\": %llu, \"shed_deadline\": %llu, "
                "\"dedup_joins\": %llu, \"shadow_early\": %llu, "
                "\"retries\": %llu, \"deadline_misses\": %llu, "
                "\"max_queue_depth\": %llu, "
                "\"backpressure_entries\": %llu, "
                "\"backpressure_exits\": %llu, "
                "\"issued_accesses\": %llu, "
                "\"latency_p50\": %llu, \"latency_p99\": %llu, "
                "\"latency_p999\": %llu, \"latency_max\": %llu, "
                "\"latency_mean\": %.2f, "
                "\"finish_time\": %llu, ",
                rows[i].profile, rows[i].policy, s.availability(),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.requestsShed),
                static_cast<unsigned long long>(s.shedAdmission),
                static_cast<unsigned long long>(s.shedDeadline),
                static_cast<unsigned long long>(s.dedupJoins),
                static_cast<unsigned long long>(
                    s.shadowEarlyCompletions),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.deadlineMisses),
                static_cast<unsigned long long>(s.maxQueueDepth),
                static_cast<unsigned long long>(
                    s.backpressureEntries),
                static_cast<unsigned long long>(s.backpressureExits),
                static_cast<unsigned long long>(s.issuedAccesses),
                static_cast<unsigned long long>(s.latencyP50),
                static_cast<unsigned long long>(s.latencyP99),
                static_cast<unsigned long long>(s.latencyP999),
                static_cast<unsigned long long>(s.latencyMax),
                s.latencyMean,
                static_cast<unsigned long long>(s.finishTime));
            std::fprintf(
                f,
                "\"stage_balance_violations\": %llu, "
                "\"slo_windows\": %llu, \"slo_breaches\": %llu, "
                "\"slo_worst_burn_milli\": %llu, \"stages\": {",
                static_cast<unsigned long long>(
                    s.stageBalanceViolations),
                static_cast<unsigned long long>(s.sloWindows),
                static_cast<unsigned long long>(s.sloBreaches),
                static_cast<unsigned long long>(s.sloWorstBurnMilli));
            bool firstStage = true;
            for (std::size_t j = 0; j < obs::kStageIdCount; ++j) {
                const obs::StageCut &cut = s.stages[j];
                if (cut.count == 0)
                    continue;
                std::fprintf(
                    f,
                    "%s\"%s\": {\"count\": %llu, \"total\": %llu, "
                    "\"p50\": %llu, \"p99\": %llu, \"p999\": %llu, "
                    "\"max\": %llu}",
                    firstStage ? "" : ", ",
                    obs::stageName(static_cast<obs::StageId>(j)),
                    static_cast<unsigned long long>(cut.count),
                    static_cast<unsigned long long>(cut.total),
                    static_cast<unsigned long long>(cut.p50),
                    static_cast<unsigned long long>(cut.p99),
                    static_cast<unsigned long long>(cut.p999),
                    static_cast<unsigned long long>(cut.max));
                firstStage = false;
            }
            std::fprintf(f, "}}%s\n",
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "service_storm: cannot write "
                     "BENCH_latency.json\n");
    }

    // Exemplar traces: a header line per point, then that point's
    // PRF-sampled exemplar rows — each links a high log2 latency bin
    // to a concrete request timeline.  Pure virtual-time content, so
    // the file is byte-identical at any SB_BENCH_THREADS.
    {
        std::string jsonl;
        for (const Row &row : rows) {
            jsonl += "{\"point\": {\"profile\": \"";
            jsonl += row.profile;
            jsonl += "\", \"policy\": \"";
            jsonl += row.policy;
            jsonl += "\"}}\n";
            jsonl += row.o.s.exemplarsJsonl;
        }
        const std::string dir = obs::dirOverride();
        const std::string path =
            (dir.empty() ? std::string(".") : dir) +
            "/exemplars-service_storm.jsonl";
        if (obs::writeTextFile(path, jsonl))
            obs::recordArtifact(path);
        else
            std::fprintf(stderr,
                         "service_storm: cannot write %s\n",
                         path.c_str());
    }

    if (watchdogTrips != 0) {
        std::fprintf(stderr,
                     "service_storm: %llu watchdog trip(s) — the "
                     "scheduler stalled\n",
                     static_cast<unsigned long long>(watchdogTrips));
        return 1;
    }
    if (lost) {
        std::fprintf(stderr,
                     "service_storm: a point lost requests "
                     "(availability < 1.0)\n");
        return 1;
    }
    if (stormShed == 0) {
        std::fprintf(stderr,
                     "service_storm: the storm profile shed nothing — "
                     "the overload drill is not overloading\n");
        return 1;
    }
    if (!deterministic)
        return 1;
    return checkRegression(checksum);
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
