/**
 * @file
 * Timing microbench for the parallel experiment runner and the
 * observability layer's overhead contract.
 *
 * Runs a fixed set of experiment points (independent of
 * SB_BENCH_MISSES / SB_BENCH_QUICK, so numbers are comparable across
 * invocations) three times: once to warm the trace cache, once with
 * observability off (the reported throughput number), and once with
 * tracing + metrics enabled.  Results land in BENCH_perf.json.
 *
 * Two assertions gate the exit code:
 *  - the observed sweep must produce the same checksum as the
 *    unobserved one (observability never changes results), and
 *  - the observed sweep must finish within 2x the unobserved wall
 *    time (a generous CI bound; typical overhead is a few percent).
 *
 * On a multi-core machine the expected scaling is near-linear until
 * the point count (24) stops covering the pool.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

/**
 * Minimal field extraction from our own BENCH_perf.json output (the
 * baseline committed in bench/).  Good enough for the exact schema
 * the writer below emits; not a JSON parser.
 */
bool
jsonField(const std::string &doc, const std::string &key,
          std::string &out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = doc.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t pos = at + needle.size();
    while (pos < doc.size() &&
           (doc[pos] == ' ' || doc[pos] == '"'))
        ++pos;
    std::size_t end = pos;
    while (end < doc.size() && doc[end] != ',' && doc[end] != '\n' &&
           doc[end] != '"' && doc[end] != '}')
        ++end;
    out = doc.substr(pos, end - pos);
    return !out.empty();
}

/**
 * Wall-time and checksum regression guard against the committed
 * baseline.  Controlled by:
 *   SB_BENCH_BASELINE        — baseline JSON path (default: the
 *                              in-tree bench/BENCH_perf.json)
 *   SB_BENCH_REGRESSION_PCT  — allowed wall-time growth (default 25)
 *   SB_BENCH_REGRESSION=0    — disable the guard entirely
 * A missing baseline file is a warning, not a failure (fresh
 * machines, renamed checkouts); a checksum mismatch always fails —
 * determinism does not depend on machine speed.
 */
int
checkRegression(double wallSeconds, std::uint64_t checksum,
                double payloadWallSeconds,
                std::uint64_t payloadChecksum)
{
    // sblint:allow-next-line(ambient-nondeterminism): guard on/off switch; simulated results never depend on it
    if (const char *onOff = std::getenv("SB_BENCH_REGRESSION")) {
        if (onOff[0] == '0') {
            std::printf("regression guard disabled "
                        "(SB_BENCH_REGRESSION=0)\n");
            return 0;
        }
    }
    // sblint:allow-next-line(ambient-nondeterminism): baseline file location, not an experiment knob
    const char *env = std::getenv("SB_BENCH_BASELINE");
    const std::string path =
        env ? env : std::string(SB_BENCH_BASELINE_DEFAULT);
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "perf_smoke: no baseline at %s — regression "
                     "guard skipped\n",
                     path.c_str());
        return 0;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string doc = ss.str();

    double pct = 25.0;
    // sblint:allow-next-line(ambient-nondeterminism): CI wall-clock tolerance; simulated results never depend on it
    if (const char *p = std::getenv("SB_BENCH_REGRESSION_PCT"))
        pct = std::atof(p);

    int rc = 0;
    std::string field;
    if (jsonField(doc, "checksum", field)) {
        const std::uint64_t base =
            std::strtoull(field.c_str(), nullptr, 16);
        if (base != checksum) {
            std::fprintf(stderr,
                         "perf_smoke: checksum %llx differs from "
                         "baseline %llx — results changed\n",
                         static_cast<unsigned long long>(checksum),
                         static_cast<unsigned long long>(base));
            rc = 1;
        }
    }
    if (jsonField(doc, "payload_checksum", field)) {
        const std::uint64_t base =
            std::strtoull(field.c_str(), nullptr, 16);
        if (base != payloadChecksum) {
            std::fprintf(
                stderr,
                "perf_smoke: payload checksum %llx differs from "
                "baseline %llx — payload results changed\n",
                static_cast<unsigned long long>(payloadChecksum),
                static_cast<unsigned long long>(base));
            rc = 1;
        }
    }
    for (const auto &[key, wall] :
         {std::pair<const char *, double>{"wall_seconds",
                                          wallSeconds},
          std::pair<const char *, double>{"payload_wall_seconds",
                                          payloadWallSeconds}}) {
        if (!jsonField(doc, key, field))
            continue;
        const double base = std::atof(field.c_str());
        if (base > 0.0 && wall > base * (1.0 + pct / 100.0)) {
            std::fprintf(stderr,
                         "perf_smoke: %s %.3f s regressed more than "
                         "%.0f%% over baseline %.3f s\n",
                         key, wall, pct, base);
            rc = 1;
        }
    }
    if (rc == 0)
        std::printf("regression guard: within %.0f%% of %s\n", pct,
                    path.c_str());
    return rc;
}

std::uint64_t
checksumOf(const std::vector<RunMetrics> &results)
{
    // Checksum so a broken parallel path cannot silently pass.
    std::uint64_t checksum = 0;
    for (const RunMetrics &m : results)
        checksum ^= m.execTime + m.requests * 31 + m.pathReads * 7;
    return checksum;
}

double
timedRun(ExperimentRunner &run,
         const std::vector<ExperimentPoint> &points,
         std::uint64_t &checksum)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = run.runAll(points);
    const auto t1 = std::chrono::steady_clock::now();
    checksum = checksumOf(results);
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

static int
runBench()
{
    // Fixed workload: every scheme the figures use, over three
    // workloads with distinct memory intensity, 2500 misses each.
    const std::uint64_t misses = 2500;
    SystemConfig base = paperSystem();
    base.oram.dataBlocks = std::uint64_t(1) << 16;
    base.timingProtection = true;

    std::vector<ExperimentPoint> points;
    for (const char *wl : {"mcf", "sjeng", "namd"}) {
        for (Scheme scheme :
             {Scheme::Insecure, Scheme::Tiny, Scheme::Shadow}) {
            points.push_back({withScheme(base, scheme), wl, misses,
                              kBenchSeed});
        }
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::RdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::HdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 4),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 7),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::DynamicPartition, 4,
                                     5),
                          wl, misses, kBenchSeed});
    }

    ExperimentRunner &run = runner();

    // Warm-up pass: generates and caches the traces so neither timed
    // pass pays the one-time generation cost.
    std::uint64_t warmChecksum = 0;
    timedRun(run, points, warmChecksum);

    std::uint64_t checksum = 0;
    const double seconds = timedRun(run, points, checksum);
    const double rate =
        static_cast<double>(points.size()) / seconds;

    // Observed pass: identical points with tracing + metrics on.
    const std::string obsDir = "obs_perf_smoke";
    std::filesystem::create_directories(obsDir);
    std::vector<ExperimentPoint> observed = points;
    for (ExperimentPoint &p : observed) {
        p.cfg.obs.trace = true;
        p.cfg.obs.metrics = true;
        p.cfg.obs.interval = 250;
        p.cfg.obs.dir = obsDir;
    }
    std::uint64_t obsChecksum = 0;
    const double obsSeconds = timedRun(run, observed, obsChecksum);
    const double overheadPct =
        seconds > 0.0 ? (obsSeconds / seconds - 1.0) * 100.0 : 0.0;

    // Payload section: the same scheme spread with real per-slot
    // crypto on (slab store + batched keystream), on a tree small
    // enough to materialize ciphertext stripes.  Timed separately so
    // the classic number stays comparable across history.
    SystemConfig payloadBase = base;
    payloadBase.oram.dataBlocks = std::uint64_t(1) << 16;
    payloadBase.oram.payloadEnabled = true;
    std::vector<ExperimentPoint> payloadPoints;
    for (const char *wl : {"mcf", "sjeng", "namd"}) {
        payloadPoints.push_back(
            {withScheme(payloadBase, Scheme::Tiny), wl, misses,
             kBenchSeed});
        payloadPoints.push_back(
            {withScheme(payloadBase, Scheme::Shadow,
                        ShadowMode::RdOnly),
             wl, misses, kBenchSeed});
        payloadPoints.push_back(
            {withScheme(payloadBase, Scheme::Shadow,
                        ShadowMode::HdOnly),
             wl, misses, kBenchSeed});
    }
    std::uint64_t payloadWarm = 0;
    timedRun(run, payloadPoints, payloadWarm);
    std::uint64_t payloadChecksum = 0;
    const double payloadSeconds =
        timedRun(run, payloadPoints, payloadChecksum);
    const double payloadRate =
        static_cast<double>(payloadPoints.size()) / payloadSeconds;

    std::printf("perf_smoke: %zu points, %u threads\n",
                points.size(), run.threads());
    std::printf("wall %.3f s, %.2f points/s, checksum %llx\n",
                seconds, rate,
                static_cast<unsigned long long>(checksum));
    std::printf("observed wall %.3f s (%+.1f%% vs unobserved)\n",
                obsSeconds, overheadPct);
    std::printf("payload wall %.3f s, %.2f points/s, checksum %llx "
                "(%zu points)\n",
                payloadSeconds, payloadRate,
                static_cast<unsigned long long>(payloadChecksum),
                payloadPoints.size());

    if (FILE *f = std::fopen("BENCH_perf.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"perf_smoke\",\n"
                     "  \"points\": %zu,\n"
                     "  \"threads\": %u,\n"
                     "  \"wall_seconds\": %.6f,\n"
                     "  \"points_per_sec\": %.3f,\n"
                     "  \"observed_wall_seconds\": %.6f,\n"
                     "  \"obs_overhead_pct\": %.2f,\n"
                     "  \"checksum\": \"%llx\",\n"
                     "  \"payload_points\": %zu,\n"
                     "  \"payload_wall_seconds\": %.6f,\n"
                     "  \"payload_points_per_sec\": %.3f,\n"
                     "  \"payload_checksum\": \"%llx\"\n"
                     "}\n",
                     points.size(), run.threads(), seconds, rate,
                     obsSeconds, overheadPct,
                     static_cast<unsigned long long>(checksum),
                     payloadPoints.size(), payloadSeconds,
                     payloadRate,
                     static_cast<unsigned long long>(payloadChecksum));
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "perf_smoke: cannot write BENCH_perf.json\n");
    }

    if (payloadChecksum != payloadWarm) {
        std::fprintf(stderr,
                     "perf_smoke: payload checksum drift (warm %llx, "
                     "timed %llx) — the payload path changed results "
                     "between identical passes\n",
                     static_cast<unsigned long long>(payloadWarm),
                     static_cast<unsigned long long>(payloadChecksum));
        return 1;
    }
    if (checksum != warmChecksum || obsChecksum != checksum) {
        std::fprintf(stderr,
                     "perf_smoke: checksum drift (warm %llx, plain "
                     "%llx, observed %llx) — observability or the "
                     "parallel path changed results\n",
                     static_cast<unsigned long long>(warmChecksum),
                     static_cast<unsigned long long>(checksum),
                     static_cast<unsigned long long>(obsChecksum));
        return 1;
    }
    // Generous 2x CI bound with half a second of slack for tiny
    // absolute timings on loaded machines.
    if (obsSeconds > 2.0 * seconds + 0.5) {
        std::fprintf(stderr,
                     "perf_smoke: observability overhead too high "
                     "(%.3f s observed vs %.3f s plain)\n",
                     obsSeconds, seconds);
        return 1;
    }
    return checkRegression(seconds, checksum, payloadSeconds,
                           payloadChecksum);
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
