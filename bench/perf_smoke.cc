/**
 * @file
 * Timing microbench for the parallel experiment runner and the
 * observability layer's overhead contract.
 *
 * Runs a fixed set of experiment points (independent of
 * SB_BENCH_MISSES / SB_BENCH_QUICK, so numbers are comparable across
 * invocations) three times: once to warm the trace cache, once with
 * observability off (the reported throughput number), and once with
 * tracing + metrics enabled.  Results land in BENCH_perf.json.
 *
 * Two assertions gate the exit code:
 *  - the observed sweep must produce the same checksum as the
 *    unobserved one (observability never changes results), and
 *  - the observed sweep must finish within 2x the unobserved wall
 *    time (a generous CI bound; typical overhead is a few percent).
 *
 * On a multi-core machine the expected scaling is near-linear until
 * the point count (24) stops covering the pool.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

std::uint64_t
checksumOf(const std::vector<RunMetrics> &results)
{
    // Checksum so a broken parallel path cannot silently pass.
    std::uint64_t checksum = 0;
    for (const RunMetrics &m : results)
        checksum ^= m.execTime + m.requests * 31 + m.pathReads * 7;
    return checksum;
}

double
timedRun(ExperimentRunner &run,
         const std::vector<ExperimentPoint> &points,
         std::uint64_t &checksum)
{
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = run.runAll(points);
    const auto t1 = std::chrono::steady_clock::now();
    checksum = checksumOf(results);
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

static int
runBench()
{
    // Fixed workload: every scheme the figures use, over three
    // workloads with distinct memory intensity, 2500 misses each.
    const std::uint64_t misses = 2500;
    SystemConfig base = paperSystem();
    base.oram.dataBlocks = std::uint64_t(1) << 16;
    base.timingProtection = true;

    std::vector<ExperimentPoint> points;
    for (const char *wl : {"mcf", "sjeng", "namd"}) {
        for (Scheme scheme :
             {Scheme::Insecure, Scheme::Tiny, Scheme::Shadow}) {
            points.push_back({withScheme(base, scheme), wl, misses,
                              kBenchSeed});
        }
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::RdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::HdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 4),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 7),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::DynamicPartition, 4,
                                     5),
                          wl, misses, kBenchSeed});
    }

    ExperimentRunner &run = runner();

    // Warm-up pass: generates and caches the traces so neither timed
    // pass pays the one-time generation cost.
    std::uint64_t warmChecksum = 0;
    timedRun(run, points, warmChecksum);

    std::uint64_t checksum = 0;
    const double seconds = timedRun(run, points, checksum);
    const double rate =
        static_cast<double>(points.size()) / seconds;

    // Observed pass: identical points with tracing + metrics on.
    const std::string obsDir = "obs_perf_smoke";
    std::filesystem::create_directories(obsDir);
    std::vector<ExperimentPoint> observed = points;
    for (ExperimentPoint &p : observed) {
        p.cfg.obs.trace = true;
        p.cfg.obs.metrics = true;
        p.cfg.obs.interval = 250;
        p.cfg.obs.dir = obsDir;
    }
    std::uint64_t obsChecksum = 0;
    const double obsSeconds = timedRun(run, observed, obsChecksum);
    const double overheadPct =
        seconds > 0.0 ? (obsSeconds / seconds - 1.0) * 100.0 : 0.0;

    std::printf("perf_smoke: %zu points, %u threads\n",
                points.size(), run.threads());
    std::printf("wall %.3f s, %.2f points/s, checksum %llx\n",
                seconds, rate,
                static_cast<unsigned long long>(checksum));
    std::printf("observed wall %.3f s (%+.1f%% vs unobserved)\n",
                obsSeconds, overheadPct);

    if (FILE *f = std::fopen("BENCH_perf.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"perf_smoke\",\n"
                     "  \"points\": %zu,\n"
                     "  \"threads\": %u,\n"
                     "  \"wall_seconds\": %.6f,\n"
                     "  \"points_per_sec\": %.3f,\n"
                     "  \"observed_wall_seconds\": %.6f,\n"
                     "  \"obs_overhead_pct\": %.2f,\n"
                     "  \"checksum\": \"%llx\"\n"
                     "}\n",
                     points.size(), run.threads(), seconds, rate,
                     obsSeconds, overheadPct,
                     static_cast<unsigned long long>(checksum));
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "perf_smoke: cannot write BENCH_perf.json\n");
    }

    if (checksum != warmChecksum || obsChecksum != checksum) {
        std::fprintf(stderr,
                     "perf_smoke: checksum drift (warm %llx, plain "
                     "%llx, observed %llx) — observability or the "
                     "parallel path changed results\n",
                     static_cast<unsigned long long>(warmChecksum),
                     static_cast<unsigned long long>(checksum),
                     static_cast<unsigned long long>(obsChecksum));
        return 1;
    }
    // Generous 2x CI bound with half a second of slack for tiny
    // absolute timings on loaded machines.
    if (obsSeconds > 2.0 * seconds + 0.5) {
        std::fprintf(stderr,
                     "perf_smoke: observability overhead too high "
                     "(%.3f s observed vs %.3f s plain)\n",
                     obsSeconds, seconds);
        return 1;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
