/**
 * @file
 * Timing microbench for the parallel experiment runner.
 *
 * Runs a fixed set of experiment points (independent of
 * SB_BENCH_MISSES / SB_BENCH_QUICK, so numbers are comparable across
 * invocations) and reports wall-clock seconds and points/second for
 * the active SB_BENCH_THREADS setting.  Results land in
 * BENCH_perf.json next to the binary's working directory.
 *
 * On a multi-core machine the expected scaling is near-linear until
 * the point count (24) stops covering the pool.
 */

#include <chrono>
#include <cstdio>

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    // Fixed workload: every scheme the figures use, over three
    // workloads with distinct memory intensity, 2500 misses each.
    const std::uint64_t misses = 2500;
    SystemConfig base = paperSystem();
    base.oram.dataBlocks = std::uint64_t(1) << 16;
    base.timingProtection = true;

    std::vector<ExperimentPoint> points;
    for (const char *wl : {"mcf", "sjeng", "namd"}) {
        for (Scheme scheme :
             {Scheme::Insecure, Scheme::Tiny, Scheme::Shadow}) {
            points.push_back({withScheme(base, scheme), wl, misses,
                              kBenchSeed});
        }
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::RdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::HdOnly),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 4),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::StaticPartition, 7),
                          wl, misses, kBenchSeed});
        points.push_back({withScheme(base, Scheme::Shadow,
                                     ShadowMode::DynamicPartition, 4,
                                     5),
                          wl, misses, kBenchSeed});
    }

    ExperimentRunner &run = runner();
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<RunMetrics> results = run.runAll(points);
    const auto t1 = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    const double rate =
        static_cast<double>(results.size()) / seconds;

    // Checksum so a broken parallel path cannot silently pass.
    std::uint64_t checksum = 0;
    for (const RunMetrics &m : results)
        checksum ^= m.execTime + m.requests * 31 + m.pathReads * 7;

    std::printf("perf_smoke: %zu points, %u threads\n",
                results.size(), run.threads());
    std::printf("wall %.3f s, %.2f points/s, checksum %llx\n",
                seconds, rate,
                static_cast<unsigned long long>(checksum));

    if (FILE *f = std::fopen("BENCH_perf.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"perf_smoke\",\n"
                     "  \"points\": %zu,\n"
                     "  \"threads\": %u,\n"
                     "  \"wall_seconds\": %.6f,\n"
                     "  \"points_per_sec\": %.3f,\n"
                     "  \"checksum\": \"%llx\"\n"
                     "}\n",
                     results.size(), run.threads(), seconds, rate,
                     static_cast<unsigned long long>(checksum));
        std::fclose(f);
    } else {
        std::fprintf(stderr,
                     "perf_smoke: cannot write BENCH_perf.json\n");
    }
    return 0;
}

int
main()
{
    return sboram::bench::guardedMain(runBench);
}
