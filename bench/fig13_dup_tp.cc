/**
 * @file
 * Fig. 13 — normalized data access time and DRI for RD-Dup and
 * HD-Dup vs Tiny ORAM, WITH timing protection (constant-rate ORAM
 * requests).  The DRI share grows because dummy requests fill idle
 * slots; RD-Dup's early forwarding lets following requests catch
 * earlier slots, suppressing dummies.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    Table t("Fig. 13 — normalized time, RD-Dup / HD-Dup vs Tiny "
            "(with timing protection)");
    t.header({"workload", "Tiny-Data", "Tiny-Intv", "RD-Data",
              "RD-Intv", "RD-Total", "HD-Data", "HD-Intv",
              "HD-Total", "dummies Tiny/RD/HD"});

    struct Row
    {
        Future<RunMetrics> tiny, rd, hd;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads())
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::RdOnly), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::HdOnly), wl)});

    std::vector<double> rdTotals, hdTotals;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics tiny = getChecked(row.tiny, wl + "/tiny");
        const RunMetrics rd = getChecked(row.rd, wl + "/rd");
        const RunMetrics hd = getChecked(row.hd, wl + "/hd");

        NormalizedTime nt = normalize(tiny, tiny);
        NormalizedTime nr = normalize(rd, tiny);
        NormalizedTime nh = normalize(hd, tiny);
        t.beginRow(wl);
        t.cell(nt.data);
        t.cell(nt.interval);
        t.cell(nr.data);
        t.cell(nr.interval);
        t.cell(nr.total);
        t.cell(nh.data);
        t.cell(nh.interval);
        t.cell(nh.total);
        t.cell(std::to_string(tiny.dummyRequests) + "/" +
               std::to_string(rd.dummyRequests) + "/" +
               std::to_string(hd.dummyRequests));
        rdTotals.push_back(nr.total);
        hdTotals.push_back(nh.total);
    }
    t.print();

    std::printf("\npaper: RD-Dup total -27%%, HD-Dup total -11%% "
                "with timing protection\n");
    std::printf("measured (gmean): RD total %.3f, HD total %.3f\n",
                gmean(rdTotals), gmean(hdTotals));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
