/**
 * @file
 * Fig. 18 — sensitivity to the CPU type: speedup of the shadow
 * block design (dynamic-3, with timing protection) over Tiny ORAM on
 * the in-order single core vs the out-of-order quad core.  Higher
 * memory intensity on the O3 system shortens DRIs, so advancing data
 * requests helps less (HD-Dup's request avoidance is unaffected).
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    Table t("Fig. 18 — speedup over Tiny ORAM, in-order vs "
            "out-of-order CPU");
    t.header({"workload", "out-of-order", "in-order"});

    struct Pair
    {
        Future<RunMetrics> tiny, sb;
    };
    struct Row
    {
        Pair o3, inOrder;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads()) {
        auto submitPair = [&](CpuKind kind) {
            SystemConfig tiny = withScheme(base, Scheme::Tiny);
            tiny.cpu = kind;
            SystemConfig sb = withScheme(
                base, Scheme::Shadow, ShadowMode::DynamicPartition,
                4, 3);
            sb.cpu = kind;
            return Pair{submitPoint(tiny, wl), submitPoint(sb, wl)};
        };
        rows.push_back({submitPair(CpuKind::OutOfOrder),
                        submitPair(CpuKind::InOrder)});
    }

    std::vector<double> o3S, inS;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        auto speedup = [](Pair &p) {
            return static_cast<double>(p.tiny.get().execTime) /
                   static_cast<double>(p.sb.get().execTime);
        };
        const double o3 = speedup(row.o3);
        const double in = speedup(row.inOrder);
        t.beginRow(wl);
        t.cell(o3, 3);
        t.cell(in, 3);
        o3S.push_back(o3);
        inS.push_back(in);
    }
    t.beginRow("gmean");
    t.cell(gmean(o3S), 3);
    t.cell(gmean(inS), 3);
    t.print();

    std::printf("\npaper: the O3 speedup is smaller than the "
                "in-order speedup\n");
    std::printf("measured: O3 %.3fx vs in-order %.3fx\n", gmean(o3S),
                gmean(inS));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
