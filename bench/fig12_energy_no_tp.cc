/**
 * @file
 * Fig. 12 — memory-system energy normalized to the insecure system,
 * without timing protection.  Shadow block reduces both the number
 * of ORAM requests (dynamic energy) and the execution time (static
 * energy); the paper reports -14% (static-7) and -18% (dynamic-3)
 * vs Tiny ORAM.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = false;

    Table t("Fig. 12 — energy vs insecure system (no timing "
            "protection)");
    t.header({"workload", "Tiny", "static-7", "dynamic-3"});

    struct Row
    {
        Future<RunMetrics> ins, tiny, st7, dyn3;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads())
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Insecure), wl),
             submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::StaticPartition, 7),
                         wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::DynamicPartition, 7,
                                    3),
                         wl)});

    std::vector<double> tinyE, st7E, dyn3E;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics ins = row.ins.get();
        const RunMetrics tiny = row.tiny.get();
        const RunMetrics st7 = row.st7.get();
        const RunMetrics dyn3 = row.dyn3.get();

        t.beginRow(wl);
        t.cell(tiny.energy / ins.energy, 1);
        t.cell(st7.energy / ins.energy, 1);
        t.cell(dyn3.energy / ins.energy, 1);
        tinyE.push_back(tiny.energy / ins.energy);
        st7E.push_back(st7.energy / ins.energy);
        dyn3E.push_back(dyn3.energy / ins.energy);
    }
    t.beginRow("gmean");
    t.cell(gmean(tinyE), 1);
    t.cell(gmean(st7E), 1);
    t.cell(gmean(dyn3E), 1);
    t.print();

    std::printf("\npaper: static-7 saves 14%%, dynamic-3 saves 18%% "
                "energy vs Tiny\n");
    std::printf("measured: static-7 saves %.0f%%, dynamic-3 saves "
                "%.0f%% vs Tiny\n",
                100.0 * (1.0 - gmean(st7E) / gmean(tinyE)),
                100.0 * (1.0 - gmean(dyn3E) / gmean(tinyE)));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
