/**
 * @file
 * Fig. 19 — sensitivity to the data ORAM size: speedup of the
 * shadow block design (dynamic-3, with timing protection) over Tiny
 * ORAM as the tree grows.  The paper sweeps 1..16 GB; this
 * reproduction sweeps the same 16x range at the scaled default
 * (16 MB .. 256 MB → labelled with the paper-equivalent sizes).
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    struct SizePoint
    {
        const char *label;
        std::uint64_t dataBlocks;
    };
    const std::vector<SizePoint> sizes{
        {"1GB(scaled)", std::uint64_t(1) << 18},
        {"2GB(scaled)", std::uint64_t(1) << 19},
        {"4GB(scaled)", std::uint64_t(1) << 20},
        {"8GB(scaled)", std::uint64_t(1) << 21},
        {"16GB(scaled)", std::uint64_t(1) << 22},
    };

    Table t("Fig. 19 — speedup over Tiny ORAM vs data ORAM size");
    std::vector<std::string> header{"size", "L", "gmean speedup"};
    t.header(header);

    const auto workloads = quickMode()
        ? std::vector<std::string>{"sjeng", "mcf", "namd"}
        : benchWorkloads();

    struct Pair
    {
        Future<RunMetrics> tiny, sb;
    };
    std::vector<std::vector<Pair>> rows;
    for (const SizePoint &sz : sizes) {
        SystemConfig cfg = base;
        cfg.oram.dataBlocks = sz.dataBlocks;
        std::vector<Pair> row;
        for (const std::string &wl : workloads)
            row.push_back(
                {submitPoint(withScheme(cfg, Scheme::Tiny), wl),
                 submitPoint(withScheme(cfg, Scheme::Shadow,
                                        ShadowMode::DynamicPartition,
                                        4, 3),
                             wl)});
        rows.push_back(std::move(row));
    }

    std::size_t rowIdx = 0;
    for (const SizePoint &sz : sizes) {
        SystemConfig cfg = base;
        cfg.oram.dataBlocks = sz.dataBlocks;
        std::vector<double> speedups;
        for (Pair &p : rows[rowIdx++])
            speedups.push_back(
                static_cast<double>(p.tiny.get().execTime) /
                static_cast<double>(p.sb.get().execTime));
        t.beginRow(sz.label);
        t.cell(static_cast<std::uint64_t>(cfg.oram.deriveLevels()));
        t.cell(gmean(speedups), 3);
    }
    t.print();

    std::printf("\npaper: the impact of the ORAM size is slight, "
                "with a mild increase for larger trees\n");
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
