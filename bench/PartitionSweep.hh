/**
 * @file
 * Shared implementation of the static-partitioning sweeps
 * (Fig. 9 without timing protection, Fig. 14 with).
 */

#ifndef SBORAM_BENCH_PARTITIONSWEEP_HH
#define SBORAM_BENCH_PARTITIONSWEEP_HH

#include "BenchUtil.hh"

namespace sboram::bench {

inline int
runPartitionSweep(bool timingProtection)
{
    SystemConfig base = paperSystem();
    base.timingProtection = timingProtection;
    const char *figure = timingProtection ? "Fig. 14" : "Fig. 9";

    const unsigned leafLevel = base.oram.deriveLevels();
    std::vector<unsigned> levels{0, 2, 4, 7, 10, 13, 16};
    while (!levels.empty() && levels.back() > leafLevel)
        levels.pop_back();
    if (levels.back() != leafLevel)
        levels.push_back(leafLevel);

    const auto spotlights = quickMode()
        ? std::vector<std::string>{"sjeng", "namd"}
        : std::vector<std::string>{"sjeng", "h264ref", "namd"};

    Table t(std::string(figure) +
            " — static partitioning level sweep (" +
            (timingProtection ? "with" : "without") +
            " timing protection)");
    std::vector<std::string> header{"series"};
    for (unsigned lvl : levels)
        header.push_back("P=" + std::to_string(lvl));
    t.header(header);

    // Submit every point up front; collect futures in print order so
    // the table is identical whatever SB_BENCH_THREADS says.
    struct SweepRow
    {
        Future<RunMetrics> tiny;
        std::vector<Future<RunMetrics>> shadow;
    };
    auto submitRow = [&](const std::string &wl) {
        SweepRow row;
        row.tiny = submitPoint(withScheme(base, Scheme::Tiny), wl);
        for (unsigned lvl : levels)
            row.shadow.push_back(submitPoint(
                withScheme(base, Scheme::Shadow,
                           ShadowMode::StaticPartition, lvl),
                wl));
        return row;
    };
    std::vector<SweepRow> spotRows;
    for (const std::string &wl : spotlights)
        spotRows.push_back(submitRow(wl));
    std::vector<SweepRow> gmeanRows;
    for (const std::string &wl : benchWorkloads())
        gmeanRows.push_back(submitRow(wl));

    for (std::size_t r = 0; r < spotlights.size(); ++r) {
        const std::string &wl = spotlights[r];
        const RunMetrics tiny = spotRows[r].tiny.get();
        std::vector<NormalizedTime> points;
        for (Future<RunMetrics> &f : spotRows[r].shadow)
            points.push_back(normalize(f.get(), tiny));
        t.beginRow(wl + " Interval");
        for (const NormalizedTime &n : points)
            t.cell(n.interval);
        t.beginRow(wl + " Data");
        for (const NormalizedTime &n : points)
            t.cell(n.data);
        t.beginRow(wl + " Total");
        for (const NormalizedTime &n : points)
            t.cell(n.total);
    }

    // Geometric mean of Total over the full workload set.
    std::vector<std::vector<double>> totals(levels.size());
    for (SweepRow &row : gmeanRows) {
        const RunMetrics tiny = row.tiny.get();
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const RunMetrics m = row.shadow[i].get();
            totals[i].push_back(static_cast<double>(m.execTime) /
                                static_cast<double>(tiny.execTime));
        }
    }
    t.beginRow("Gmean Total");
    double best = 1e300;
    unsigned bestLevel = 0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const double g = gmean(totals[i]);
        t.cell(g);
        if (g < best) {
            best = g;
            bestLevel = levels[i];
        }
    }
    t.print();

    std::printf("\npaper: best partitioning level %s\n",
                timingProtection ? "4" : "7");
    std::printf("measured: best level %u (total %.3f of Tiny)\n",
                bestLevel, best);
    return 0;
}

} // namespace sboram::bench

#endif // SBORAM_BENCH_PARTITIONSWEEP_HH
