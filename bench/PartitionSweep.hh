/**
 * @file
 * Shared implementation of the static-partitioning sweeps
 * (Fig. 9 without timing protection, Fig. 14 with).
 */

#ifndef SBORAM_BENCH_PARTITIONSWEEP_HH
#define SBORAM_BENCH_PARTITIONSWEEP_HH

#include "BenchUtil.hh"

namespace sboram::bench {

inline int
runPartitionSweep(bool timingProtection)
{
    SystemConfig base = paperSystem();
    base.timingProtection = timingProtection;
    const char *figure = timingProtection ? "Fig. 14" : "Fig. 9";

    const unsigned leafLevel = base.oram.deriveLevels();
    std::vector<unsigned> levels{0, 2, 4, 7, 10, 13, 16};
    while (!levels.empty() && levels.back() > leafLevel)
        levels.pop_back();
    if (levels.back() != leafLevel)
        levels.push_back(leafLevel);

    const auto spotlights = quickMode()
        ? std::vector<std::string>{"sjeng", "namd"}
        : std::vector<std::string>{"sjeng", "h264ref", "namd"};

    Table t(std::string(figure) +
            " — static partitioning level sweep (" +
            (timingProtection ? "with" : "without") +
            " timing protection)");
    std::vector<std::string> header{"series"};
    for (unsigned lvl : levels)
        header.push_back("P=" + std::to_string(lvl));
    t.header(header);

    for (const std::string &wl : spotlights) {
        RunMetrics tiny =
            runPoint(withScheme(base, Scheme::Tiny), wl);
        std::vector<NormalizedTime> points;
        for (unsigned lvl : levels) {
            RunMetrics m = runPoint(
                withScheme(base, Scheme::Shadow,
                           ShadowMode::StaticPartition, lvl),
                wl);
            points.push_back(normalize(m, tiny));
        }
        t.beginRow(wl + " Interval");
        for (const NormalizedTime &n : points)
            t.cell(n.interval);
        t.beginRow(wl + " Data");
        for (const NormalizedTime &n : points)
            t.cell(n.data);
        t.beginRow(wl + " Total");
        for (const NormalizedTime &n : points)
            t.cell(n.total);
    }

    // Geometric mean of Total over the full workload set.
    std::vector<std::vector<double>> totals(levels.size());
    for (const std::string &wl : benchWorkloads()) {
        RunMetrics tiny =
            runPoint(withScheme(base, Scheme::Tiny), wl);
        for (std::size_t i = 0; i < levels.size(); ++i) {
            RunMetrics m = runPoint(
                withScheme(base, Scheme::Shadow,
                           ShadowMode::StaticPartition, levels[i]),
                wl);
            totals[i].push_back(static_cast<double>(m.execTime) /
                                static_cast<double>(tiny.execTime));
        }
    }
    t.beginRow("Gmean Total");
    double best = 1e300;
    unsigned bestLevel = 0;
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const double g = gmean(totals[i]);
        t.cell(g);
        if (g < best) {
            best = g;
            bestLevel = levels[i];
        }
    }
    t.print();

    std::printf("\npaper: best partitioning level %s\n",
                timingProtection ? "4" : "7");
    std::printf("measured: best level %u (total %.3f of Tiny)\n",
                bestLevel, best);
    return 0;
}

} // namespace sboram::bench

#endif // SBORAM_BENCH_PARTITIONSWEEP_HH
