/**
 * @file
 * Google-benchmark microbenchmarks of the substrates: PRF/OTP codec,
 * DRAM path scheduling, stash operations, PLB, recursive position
 * map resolution, duplication queues, workload generation, and a
 * whole ORAM access.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "common/Rng.hh"
#include "crypto/Otp.hh"
#include "mem/AddressMap.hh"
#include "mem/DramModel.hh"
#include "oram/Plb.hh"
#include "oram/RecursivePosMap.hh"
#include "oram/Stash.hh"
#include "oram/TinyOram.hh"
#include "shadow/DupQueues.hh"
#include "shadow/ShadowPolicy.hh"
#include "workload/SpecProfiles.hh"

using namespace sboram;

namespace {

void
BM_Prf64(benchmark::State &state)
{
    PrfKey key;
    std::uint64_t n = 0;
    for (auto _ : state) {
        ++n;
        benchmark::DoNotOptimize(prf64(key, n, n & 7));
    }
}
BENCHMARK(BM_Prf64);

void
BM_OtpEncryptBlock(benchmark::State &state)
{
    OtpCodec codec;
    std::vector<std::uint64_t> block(8, 0x1234567890abcdefULL);
    for (auto _ : state)
        benchmark::DoNotOptimize(codec.encrypt(block));
}
BENCHMARK(BM_OtpEncryptBlock);

void
BM_DramPathRead(benchmark::State &state)
{
    DramModel dram(DramTiming::ddr3_1333(), DramGeometry{});
    const unsigned leafLevel = 18, z = 5;
    AddressMap map(DramGeometry{}, leafLevel + 1, z);
    std::vector<DramCoord> coords;
    for (unsigned level = 0; level <= leafLevel; ++level) {
        BucketIndex b = ((BucketIndex(1) << level) - 1) +
                        (0x15555u >> (leafLevel - level));
        for (unsigned s = 0; s < z; ++s)
            coords.push_back(map.mapSlot(b, s));
    }
    Cycles t = 0;
    for (auto _ : state) {
        BatchTiming bt = dram.accessBatch(t, coords, false);
        t = bt.finish;
        benchmark::DoNotOptimize(bt.finish);
    }
}
BENCHMARK(BM_DramPathRead);

void
BM_StashInsertFind(benchmark::State &state)
{
    Stash stash(200);
    Rng rng(1);
    std::uint64_t i = 0;
    for (auto _ : state) {
        StashEntry e;
        e.addr = i++ % 512;
        e.type = BlockType::Shadow;
        stash.insert(std::move(e));
        benchmark::DoNotOptimize(stash.find(rng.below(512)));
    }
}
BENCHMARK(BM_StashInsertFind);

void
BM_StashEligibleScan(benchmark::State &state)
{
    Stash stash(200);
    Rng rng(2);
    for (int i = 0; i < 180; ++i) {
        StashEntry e;
        e.addr = static_cast<Addr>(i);
        e.leaf = rng.below(1 << 18);
        e.type = i % 3 ? BlockType::Real : BlockType::Shadow;
        stash.insert(std::move(e));
    }
    for (auto _ : state) {
        auto v = stash.eligibleForLevel(
            4, [](LeafLabel leaf) {
                return static_cast<unsigned>(leaf % 19);
            });
        benchmark::DoNotOptimize(v.size());
    }
}
BENCHMARK(BM_StashEligibleScan);

void
BM_PlbLookup(benchmark::State &state)
{
    Plb plb(64 * 1024, 64);
    Rng rng(3);
    for (Addr a = 0; a < 1024; ++a)
        plb.insert(a);
    for (auto _ : state)
        benchmark::DoNotOptimize(plb.lookup(rng.below(2048)));
}
BENCHMARK(BM_PlbLookup);

void
BM_RecursiveResolve(benchmark::State &state)
{
    OramConfig cfg;
    cfg.dataBlocks = 1 << 20;
    RecursivePosMap rec(cfg);
    Plb plb(64 * 1024, 64);
    Rng rng(4);
    for (auto _ : state) {
        auto chain = rec.resolve(rng.below(1 << 20), plb);
        benchmark::DoNotOptimize(chain.size());
    }
}
BENCHMARK(BM_RecursiveResolve);

void
BM_DupQueuePushPop(benchmark::State &state)
{
    DupQueue q(DupQueue::Rank::ByLevelDesc);
    Rng rng(5);
    for (auto _ : state) {
        for (int i = 0; i < 40; ++i) {
            DupCandidate c;
            c.addr = i;
            c.rearLevel = static_cast<unsigned>(rng.below(19));
            c.maxLevel = c.rearLevel;
            c.seq = static_cast<std::uint64_t>(i);
            q.push(c);
        }
        for (int i = 0; i < 40; ++i)
            benchmark::DoNotOptimize(q.popFor(i % 12));
        q.clear();
    }
}
BENCHMARK(BM_DupQueuePushPop);

void
BM_WorkloadGeneration(benchmark::State &state)
{
    for (auto _ : state) {
        WorkloadGenerator gen(specProfile("hmmer"), 1);
        benchmark::DoNotOptimize(gen.generate(1000).size());
    }
}
BENCHMARK(BM_WorkloadGeneration);

void
BM_OramAccess(benchmark::State &state)
{
    OramConfig cfg;
    cfg.dataBlocks = 1 << 14;
    cfg.posMapMode = PosMapMode::OnChip;
    DramModel dram(DramTiming::ddr3_1333(), DramGeometry{});
    auto policy = std::make_unique<ShadowPolicy>(
        ShadowConfig{}, cfg.deriveLevels());
    TinyOram oram(cfg, dram, std::move(policy));
    Rng rng(6);
    Cycles t = 0;
    for (auto _ : state) {
        AccessResult r =
            oram.access(rng.below(1 << 14), Op::Read, t + 100);
        t = r.completeAt;
        benchmark::DoNotOptimize(r.forwardAt);
    }
}
BENCHMARK(BM_OramAccess);

} // namespace

BENCHMARK_MAIN();
