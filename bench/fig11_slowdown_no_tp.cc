/**
 * @file
 * Fig. 11 — slowdown over the insecure system, without timing
 * protection: Tiny ORAM, static-7 and dynamic-3 shadow block
 * designs.  Paper: Tiny ~2.8x, static-7 2.35x, dynamic-3 2.21x
 * on average; mcf/libquantum/omnetpp stand out (memory intensity).
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = false;

    Table t("Fig. 11 — slowdown vs insecure system (no timing "
            "protection)");
    t.header({"workload", "Tiny", "static-7", "dynamic-3",
              "insecure"});

    struct Row
    {
        Future<RunMetrics> ins, tiny, st7, dyn3;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads())
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Insecure), wl),
             submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::StaticPartition, 7),
                         wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::DynamicPartition, 7,
                                    3),
                         wl)});

    std::vector<double> tinyS, st7S, dyn3S;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics ins = getChecked(row.ins, wl + "/ins");
        const RunMetrics tiny = getChecked(row.tiny, wl + "/tiny");
        const RunMetrics st7 = getChecked(row.st7, wl + "/st7");
        const RunMetrics dyn3 = getChecked(row.dyn3, wl + "/dyn3");

        const double insT = static_cast<double>(ins.execTime);
        t.beginRow(wl);
        t.cell(static_cast<double>(tiny.execTime) / insT, 2);
        t.cell(static_cast<double>(st7.execTime) / insT, 2);
        t.cell(static_cast<double>(dyn3.execTime) / insT, 2);
        t.cell(1.0, 2);
        tinyS.push_back(static_cast<double>(tiny.execTime) / insT);
        st7S.push_back(static_cast<double>(st7.execTime) / insT);
        dyn3S.push_back(static_cast<double>(dyn3.execTime) / insT);
    }
    t.beginRow("gmean");
    t.cell(gmean(tinyS), 2);
    t.cell(gmean(st7S), 2);
    t.cell(gmean(dyn3S), 2);
    t.cell(1.0, 2);
    t.print();

    std::printf("\npaper: Tiny ~2.8x, static-7 2.35x (85%% of Tiny), "
                "dynamic-3 2.21x (80%% of Tiny)\n");
    std::printf("measured: Tiny %.2fx, static-7 %.2fx (%.0f%%), "
                "dynamic-3 %.2fx (%.0f%%)\n",
                gmean(tinyS), gmean(st7S),
                100.0 * gmean(st7S) / gmean(tinyS), gmean(dyn3S),
                100.0 * gmean(dyn3S) / gmean(tinyS));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
