/**
 * @file
 * Fig. 8 — normalized data access time and data request interval
 * (DRI) for RD-Dup and HD-Dup vs Tiny ORAM, without timing
 * protection.  Each workload's bars are normalized to Tiny ORAM's
 * total execution time (Tiny-Data + Tiny-Interval = 1.0).
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = false;

    Table t("Fig. 8 — normalized time, RD-Dup / HD-Dup vs Tiny "
            "(no timing protection)");
    t.header({"workload", "Tiny-Data", "Tiny-Intv", "RD-Data",
              "RD-Intv", "RD-Total", "HD-Data", "HD-Intv",
              "HD-Total"});

    struct Row
    {
        Future<RunMetrics> tiny, rd, hd;
    };
    std::vector<Row> rows;
    for (const std::string &wl : benchWorkloads())
        rows.push_back(
            {submitPoint(withScheme(base, Scheme::Tiny), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::RdOnly), wl),
             submitPoint(withScheme(base, Scheme::Shadow,
                                    ShadowMode::HdOnly), wl)});

    std::vector<double> rdTotals, hdTotals, rdIntv, hdIntv, rdData,
        hdData;
    std::size_t rowIdx = 0;
    for (const std::string &wl : benchWorkloads()) {
        Row &row = rows[rowIdx++];
        const RunMetrics tiny = getChecked(row.tiny, wl + "/tiny");
        const RunMetrics rd = getChecked(row.rd, wl + "/rd");
        const RunMetrics hd = getChecked(row.hd, wl + "/hd");

        NormalizedTime nt = normalize(tiny, tiny);
        NormalizedTime nr = normalize(rd, tiny);
        NormalizedTime nh = normalize(hd, tiny);
        t.beginRow(wl);
        t.cell(nt.data);
        t.cell(nt.interval);
        t.cell(nr.data);
        t.cell(nr.interval);
        t.cell(nr.total);
        t.cell(nh.data);
        t.cell(nh.interval);
        t.cell(nh.total);
        rdTotals.push_back(nr.total);
        hdTotals.push_back(nh.total);
        rdData.push_back(nr.data / nt.data);
        hdData.push_back(nh.data / nt.data);
        rdIntv.push_back(nr.interval / nt.interval);
        hdIntv.push_back(nh.interval / nt.interval);
    }
    t.print();

    std::printf("\npaper: RD-Dup cuts DRI most (74%%), HD-Dup cuts "
                "data access time most (12%%)\n");
    std::printf("measured (gmean): RD total %.3f (DRI ratio %.3f, "
                "data ratio %.3f)\n",
                gmean(rdTotals), gmean(rdIntv), gmean(rdData));
    std::printf("measured (gmean): HD total %.3f (DRI ratio %.3f, "
                "data ratio %.3f)\n",
                gmean(hdTotals), gmean(hdIntv), gmean(hdData));
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
