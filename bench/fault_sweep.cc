/**
 * @file
 * Fault sweep — the duplication mechanism as a reliability feature.
 *
 * Sweeps deterministic memory-fault injection (bit flips, dropped
 * writes, stuck cells — see src/fault/) over fault rate × duplication
 * policy and reports, per point, how many corruptions the integrity
 * tags detected and what fraction the shadow-copy recovery path
 * healed.  Tiny ORAM keeps no duplicates, so every corrupted real
 * block is a loss; RD-Dup/HD-Dup heal a strictly positive fraction
 * from same-version shadow copies.
 *
 * The grid runs under UnrecoverablePolicy::Count so one lost block
 * does not kill the sweep.  A final demo reruns the worst point under
 * the Throw policy with bounded retry, exercising the
 * error-propagating futures end to end.
 *
 * Env knobs: SB_FAULT_SEED / SB_FAULT_KINDS / SB_FAULT_UNRECOVERABLE
 * override the grid's fault configuration; SB_FAULT_RATE replaces the
 * rate axis with the single given rate.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

/** Functional-scale payload-mode system (fault injection corrupts
 *  stored ciphertexts, so payloads must exist). */
SystemConfig
faultSystem()
{
    SystemConfig cfg;
    cfg.oram.dataBlocks = std::uint64_t(1) << 12;
    cfg.oram.posMapMode = PosMapMode::OnChip;
    cfg.oram.payloadEnabled = true;
    cfg.oram.stashCapacity = 200;
    cfg.timingProtection = false;
    return cfg;
}

} // namespace

static int
runBench()
{
    FaultConfig faultBase;
    faultBase.seed = 99;
    faultBase.onUnrecoverable = UnrecoverablePolicy::Count;
    faultBase = FaultConfig::fromEnv(faultBase);

    std::vector<double> rates =
        quickMode() ? std::vector<double>{0.0, 5e-3}
                    : std::vector<double>{0.0, 1e-3, 5e-3, 2e-2};
    // sblint:allow-next-line(ambient-nondeterminism): presence check narrows the sweep grid to the operator's rate; seeds stay fixed
    if (std::getenv("SB_FAULT_RATE"))
        rates = {faultBase.rate};

    struct Policy
    {
        const char *name;
        Scheme scheme;
        ShadowMode mode;
    };
    const std::vector<Policy> policies = {
        {"tiny", Scheme::Tiny, ShadowMode::RdOnly},
        {"rd", Scheme::Shadow, ShadowMode::RdOnly},
        {"hd", Scheme::Shadow, ShadowMode::HdOnly},
    };
    const std::string workload = "mcf";

    struct Point
    {
        const Policy *policy;
        double rate;
        Future<RunMetrics> future;
    };
    std::vector<Point> points;
    for (const Policy &p : policies) {
        for (double rate : rates) {
            SystemConfig cfg =
                withScheme(faultSystem(), p.scheme, p.mode);
            cfg.oram.fault = faultBase;
            cfg.oram.fault.rate = rate;
            points.push_back({&p, rate, submitPoint(cfg, workload)});
        }
    }

    Table t("Fault sweep — detection and shadow-copy recovery");
    t.header({"policy", "rate", "injected", "detected", "recovered",
              "lost", "recovery%"});
    for (Point &pt : points) {
        const std::string label =
            std::string(pt.policy->name) + "@" +
            strprintf("%g", pt.rate);
        const RunMetrics &m = getChecked(pt.future, label);
        t.beginRow(pt.policy->name);
        t.cell(strprintf("%g", pt.rate));
        t.cell(m.faultsInjected);
        t.cell(m.faultsDetected);
        t.cell(m.faultsRecovered);
        t.cell(m.faultsUnrecoverable);
        t.cell(m.faultsDetected
                   ? 100.0 * static_cast<double>(m.faultsRecovered) /
                         static_cast<double>(m.faultsDetected)
                   : 0.0,
               1);
    }
    t.print();
    std::printf("\nduplication doubles as redundancy: tiny loses "
                "every corrupted real block, rd/hd heal from "
                "same-version shadows\n");

    // Error-propagation demo: the highest-rate HD point again, but
    // with UnrecoverablePolicy::Throw and bounded retry.  A task that
    // throws fails its future promptly — get() rethrows on this
    // thread instead of deadlocking the sweep — and each retry rolls
    // a fresh fault realisation (shifted fault seed).
    SystemConfig throwCfg =
        withScheme(faultSystem(), Scheme::Shadow, ShadowMode::HdOnly);
    throwCfg.oram.fault = faultBase;
    throwCfg.oram.fault.rate = rates.back();
    throwCfg.oram.fault.onUnrecoverable = UnrecoverablePolicy::Throw;
    Future<RunMetrics> f = runner().submit(
        throwCfg, workload, missesPerRun(), kBenchSeed, /*retries=*/3);
    try {
        const RunMetrics &m = f.get();
        std::printf("throw+retry: completed; recovered %llu of %llu "
                    "detected corruptions\n",
                    static_cast<unsigned long long>(m.faultsRecovered),
                    static_cast<unsigned long long>(m.faultsDetected));
    } catch (const RetryBudgetExhaustedError &e) {
        // The structured per-point failure record: the sweep reports
        // the loss and finishes instead of tearing down.
        std::printf("throw+retry: point '%s' exhausted its retry "
                    "budget after %u attempt(s), %llu ms of backoff "
                    "(last error: %s)\n",
                    e.label().c_str(), e.attempts(),
                    static_cast<unsigned long long>(e.sleptMs()),
                    e.lastError().c_str());
        return 0;
    } catch (const CorruptionError &e) {
        std::printf("throw+retry: lost a block on every attempt "
                    "(last: access %llu, bucket %llu, level %u)\n",
                    static_cast<unsigned long long>(e.accessCount()),
                    static_cast<unsigned long long>(e.bucket()),
                    e.level());
        return 0;
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
