/**
 * @file
 * Ablation of the design choices this implementation makes on top of
 * the paper's letter (DESIGN.md §3):
 *   - shadow recirculation (re-offering vacuumed shadow copies so
 *     they survive bucket rewrites),
 *   - multi-duplication (queue refill: several shadow copies of one
 *     candidate per path write),
 *   - serving read hits from stash-resident shadow copies.
 * Each row disables one mechanism; "full" is the shipped design,
 * "paper-literal" disables all three.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

static int
runBench()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    struct Variant
    {
        const char *name;
        bool recirculate;
        bool refill;
        bool serveShadow;
    };
    const std::vector<Variant> variants{
        {"full design", true, true, true},
        {"no recirculation", false, true, true},
        {"no multi-dup", true, false, true},
        {"no shadow stash hits", true, true, false},
        {"paper-literal", false, false, false},
    };

    const auto workloads = quickMode()
        ? std::vector<std::string>{"sjeng", "namd"}
        : std::vector<std::string>{"sjeng", "namd", "h264ref",
                                   "gobmk", "astar"};

    Table t("Ablation — execution time vs Tiny ORAM "
            "(dynamic-3, with timing protection)");
    std::vector<std::string> header{"variant"};
    for (const auto &wl : workloads)
        header.push_back(wl);
    header.push_back("gmean");
    t.header(header);

    struct Pair
    {
        Future<RunMetrics> tiny, variant;
    };
    std::vector<std::vector<Pair>> rows;
    for (const Variant &v : variants) {
        std::vector<Pair> row;
        for (const std::string &wl : workloads) {
            SystemConfig cfg = withScheme(
                base, Scheme::Shadow, ShadowMode::DynamicPartition,
                4, 3);
            cfg.oram.recirculateShadows = v.recirculate;
            cfg.oram.serveFromShadow = v.serveShadow;
            cfg.shadow.refillQueues = v.refill;
            row.push_back(
                {submitPoint(withScheme(base, Scheme::Tiny), wl),
                 submitPoint(cfg, wl)});
        }
        rows.push_back(std::move(row));
    }

    std::size_t rowIdx = 0;
    for (const Variant &v : variants) {
        t.beginRow(v.name);
        std::vector<double> ratios;
        for (Pair &p : rows[rowIdx++]) {
            const double ratio =
                static_cast<double>(p.variant.get().execTime) /
                static_cast<double>(p.tiny.get().execTime);
            t.cell(ratio, 3);
            ratios.push_back(ratio);
        }
        t.cell(gmean(ratios), 3);
    }
    t.print();
    return 0;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
