/**
 * @file
 * Ablation of the design choices this implementation makes on top of
 * the paper's letter (DESIGN.md §3):
 *   - shadow recirculation (re-offering vacuumed shadow copies so
 *     they survive bucket rewrites),
 *   - multi-duplication (queue refill: several shadow copies of one
 *     candidate per path write),
 *   - serving read hits from stash-resident shadow copies.
 * Each row disables one mechanism; "full" is the shipped design,
 * "paper-literal" disables all three.
 */

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

int
main()
{
    SystemConfig base = paperSystem();
    base.timingProtection = true;

    struct Variant
    {
        const char *name;
        bool recirculate;
        bool refill;
        bool serveShadow;
    };
    const std::vector<Variant> variants{
        {"full design", true, true, true},
        {"no recirculation", false, true, true},
        {"no multi-dup", true, false, true},
        {"no shadow stash hits", true, true, false},
        {"paper-literal", false, false, false},
    };

    const auto workloads = quickMode()
        ? std::vector<std::string>{"sjeng", "namd"}
        : std::vector<std::string>{"sjeng", "namd", "h264ref",
                                   "gobmk", "astar"};

    Table t("Ablation — execution time vs Tiny ORAM "
            "(dynamic-3, with timing protection)");
    std::vector<std::string> header{"variant"};
    for (const auto &wl : workloads)
        header.push_back(wl);
    header.push_back("gmean");
    t.header(header);

    for (const Variant &v : variants) {
        t.beginRow(v.name);
        std::vector<double> ratios;
        for (const std::string &wl : workloads) {
            RunMetrics tiny =
                runPoint(withScheme(base, Scheme::Tiny), wl);
            SystemConfig cfg = withScheme(
                base, Scheme::Shadow, ShadowMode::DynamicPartition,
                4, 3);
            cfg.oram.recirculateShadows = v.recirculate;
            cfg.oram.serveFromShadow = v.serveShadow;
            cfg.shadow.refillQueues = v.refill;
            RunMetrics m = runPoint(cfg, wl);
            const double ratio = static_cast<double>(m.execTime) /
                                 static_cast<double>(tiny.execTime);
            t.cell(ratio, 3);
            ratios.push_back(ratio);
        }
        t.cell(gmean(ratios), 3);
    }
    t.print();
    return 0;
}
