/**
 * @file
 * Stash occupancy study (paper Section IV-B2).
 *
 * The security argument requires that shadow blocks do not change the
 * stash-overflow probability: shadow entries are always replaceable,
 * so the distribution of *real* stash occupancy must match baseline
 * Tiny ORAM exactly.  This bench drives both controllers with the
 * same request streams and prints the occupancy distribution
 * percentiles side by side, plus the worst case over all seeds.
 */

#include <algorithm>

#include "BenchUtil.hh"
#include "mem/DramModel.hh"
#include "oram/TinyOram.hh"
#include "shadow/ShadowPolicy.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

struct OccupancySample
{
    std::vector<std::uint64_t> samples;  ///< Real occupancy per access.
    std::uint64_t peak = 0;

    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0.0;
        std::vector<std::uint64_t> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        const std::size_t idx = static_cast<std::size_t>(
            p * static_cast<double>(sorted.size() - 1));
        return static_cast<double>(sorted[idx]);
    }
};

OccupancySample
drive(bool shadow, std::uint64_t seed, std::uint64_t accesses)
{
    OramConfig cfg;
    cfg.dataBlocks = 1 << 16;
    cfg.posMapMode = PosMapMode::OnChip;
    cfg.seed = seed;
    cfg.serveFromShadow = false;  // Identical request streams.

    DramModel dram(DramTiming::ddr3_1333(), DramGeometry{});
    std::unique_ptr<DuplicationPolicy> policy;
    if (shadow) {
        policy = std::make_unique<ShadowPolicy>(
            ShadowConfig{}, cfg.deriveLevels());
    }
    TinyOram oram(cfg, dram, std::move(policy));

    Rng rng(seed * 77 + 1);
    OccupancySample out;
    Cycles t = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        Addr a = rng.below(1 << 16);
        Op op = rng.chance(0.3) ? Op::Write : Op::Read;
        t = oram.access(a, op, t + 100).completeAt;
        out.samples.push_back(oram.stash().realCount());
    }
    out.peak = oram.stash().stats().peakReal;
    return out;
}

} // namespace

static int
runBench()
{
    const std::uint64_t accesses = quickMode() ? 4000 : 12000;
    Table t("Stash occupancy (real blocks) — Tiny vs Shadow Block "
            "under identical request streams");
    t.header({"seed", "p50 T/S", "p90 T/S", "p99 T/S", "max T/S",
              "identical"});

    struct SeedRuns
    {
        Future<OccupancySample> tiny, shadow;
    };
    const std::uint64_t seeds = quickMode() ? 2 : 5;
    std::vector<SeedRuns> runs;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed)
        runs.push_back({runner().defer([seed, accesses] {
                            return drive(false, seed, accesses);
                        }),
                        runner().defer([seed, accesses] {
                            return drive(true, seed, accesses);
                        })});

    bool allIdentical = true;
    std::uint64_t worstPeak = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        SeedRuns &r = runs[seed - 1];
        const OccupancySample tiny = r.tiny.get();
        const OccupancySample shadow = r.shadow.get();
        const bool identical = tiny.samples == shadow.samples;
        allIdentical = allIdentical && identical;
        worstPeak = std::max({worstPeak, tiny.peak, shadow.peak});

        t.beginRow(std::to_string(seed));
        auto pair = [&](double p) {
            return std::to_string(static_cast<unsigned>(
                       tiny.percentile(p))) + "/" +
                   std::to_string(static_cast<unsigned>(
                       shadow.percentile(p)));
        };
        t.cell(pair(0.50));
        t.cell(pair(0.90));
        t.cell(pair(0.99));
        t.cell(std::to_string(tiny.peak) + "/" +
               std::to_string(shadow.peak));
        t.cell(identical ? "yes" : "NO");
    }
    t.print();

    std::printf("\nworst-case real occupancy %llu of %u-entry stash; "
                "per-access occupancy traces %s between Tiny and "
                "Shadow Block\n",
                static_cast<unsigned long long>(worstPeak), 200,
                allIdentical ? "are bit-identical"
                             : "DIVERGED (bug!)");
    return allIdentical ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
