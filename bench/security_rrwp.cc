/**
 * @file
 * Section III / IV-B as an experiment: the RRWP-k distinguisher over
 * external traces of the shadow block design (must NOT separate scan
 * from cyclic programs), the leaf-uniformity chi-square, and the
 * counterfactual reordering leak (intended-block level sequences,
 * which separate the programs immediately).
 */

#include <cmath>
#include <memory>
#include <utility>

#include "BenchUtil.hh"
#include "mem/DramModel.hh"
#include "oram/TinyOram.hh"
#include "security/Distinguisher.hh"
#include "security/TraceRecorder.hh"
#include "shadow/ShadowPolicy.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

struct Observation
{
    std::vector<double> rrwpRates;
    std::vector<double> levels;
    double chi2 = 0.0;
};

Observation
observe(const std::vector<Addr> &addrs, std::uint64_t seed)
{
    OramConfig cfg;
    cfg.dataBlocks = 1 << 14;
    cfg.posMapMode = PosMapMode::OnChip;
    cfg.seed = seed;
    DramModel dram(DramTiming::ddr3_1333(), DramGeometry{});
    auto policy = std::make_unique<ShadowPolicy>(
        ShadowConfig{}, cfg.deriveLevels());
    TinyOram oram(cfg, dram, std::move(policy));
    TraceRecorder rec;
    oram.setTraceSink(&rec);

    Observation obs;
    Cycles t = 0;
    for (Addr a : addrs) {
        if (oram.wouldHitStash(a, Op::Read)) {
            oram.access(a, Op::Read, t + 100);
            continue;
        }
        AccessResult r = oram.access(a, Op::Read, t + 100);
        t = r.completeAt;
        obs.levels.push_back(static_cast<double>(r.forwardLevel));
    }
    const auto &ev = rec.events();
    const std::size_t chunk = 400;
    for (std::size_t s = 0; s + chunk <= ev.size(); s += chunk) {
        std::vector<TraceEvent> part(ev.begin() + s,
                                     ev.begin() + s + chunk);
        obs.rrwpRates.push_back(rrwpRate(part, 32));
    }
    obs.chi2 = leafUniformityChi2(ev, 16, oram.tree().numLeaves());
    return obs;
}

} // namespace

static int
runBench()
{
    const std::size_t n = quickMode() ? 4000 : 8000;
    std::vector<Addr> scan, cyclic;
    for (std::size_t i = 0; i < n; ++i) {
        scan.push_back(static_cast<Addr>(i % (1 << 14)));
        cyclic.push_back(static_cast<Addr>(i % 1500));
    }

    Future<Observation> sF = runner().defer(
        [trace = std::move(scan)] { return observe(trace, 3); });
    Future<Observation> cF = runner().defer(
        [trace = std::move(cyclic)] { return observe(trace, 3); });
    const Observation s = sF.get();
    const Observation c = cF.get();

    Table t("Security experiments (Sections III and IV-B)");
    t.header({"statistic", "value", "verdict"});

    const double zTrace = meanDistinguisherZ(s.rrwpRates,
                                             c.rrwpRates);
    t.beginRow("RRWP-32 distinguisher |z| (shadow design)");
    t.cell(std::fabs(zTrace), 2);
    t.cell(std::fabs(zTrace) < 4.0 ? "indistinguishable"
                                   : "LEAK");

    t.beginRow("leaf uniformity chi2/df (scan)");
    t.cell(s.chi2, 3);
    t.cell(s.chi2 < 1.8 ? "uniform" : "SKEWED");
    t.beginRow("leaf uniformity chi2/df (cyclic)");
    t.cell(c.chi2, 3);
    t.cell(c.chi2 < 1.8 ? "uniform" : "SKEWED");

    const double zLeak = meanDistinguisherZ(s.levels, c.levels);
    t.beginRow("counterfactual reorder leak |z|");
    t.cell(std::fabs(zLeak), 2);
    t.cell(std::fabs(zLeak) > 4.0 ? "reordering would leak"
                                  : "inconclusive");
    t.print();

    return std::fabs(zTrace) < 4.0 && s.chi2 < 1.8 &&
                   c.chi2 < 1.8
        ? 0
        : 1;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
