/**
 * @file
 * Fig. 14 — static partitioning sweep WITH timing protection.  The
 * DRI share is much larger under constant-rate requests, so the
 * optimum shifts toward more RD-Dup (a lower partitioning level)
 * than Fig. 9's.
 */

#include "PartitionSweep.hh"

static int
runBench()
{
    return sboram::bench::runPartitionSweep(true);
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
