/**
 * @file
 * Payload-path throughput microbench.
 *
 * The slab ciphertext store and batched OTP keystream exist to make
 * payload-enabled accesses cheap; this bench puts a number on it:
 * end-to-end accesses/second with payloads (real encrypt on every
 * path-write slot, verify+decrypt on every occupied path-read slot)
 * for the Tiny baseline and the two single-queue shadow schemes.
 *
 * Each scheme point is timed individually after a warm-up pass (trace
 * generation and pool growth amortized out), so the number tracks the
 * steady-state hot path.  Results land in BENCH_throughput.json next
 * to the binary; the simulated metrics are asserted identical between
 * the warm-up and the timed pass, so a nondeterministic access path
 * cannot hide behind a throughput report.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

struct SchemePoint
{
    const char *name;
    SystemConfig cfg;
};

std::uint64_t
metricsFingerprint(const RunMetrics &m)
{
    return m.execTime + m.requests * 31 + m.pathReads * 7 +
           m.shadowsWritten * 3;
}

} // namespace

static int
runBench()
{
    // Payload mode materializes one ciphertext stripe per slot, so
    // the tree is kept at 2^16 data blocks (4 MB of lanes) — large
    // enough for a 17-level path, small enough to run everywhere.
    SystemConfig base = paperSystem();
    base.oram.dataBlocks = std::uint64_t(1) << 16;
    base.oram.payloadEnabled = true;

    const std::vector<SchemePoint> schemes = {
        {"tiny", withScheme(base, Scheme::Tiny)},
        {"shadow-rd",
         withScheme(base, Scheme::Shadow, ShadowMode::RdOnly)},
        {"shadow-hd",
         withScheme(base, Scheme::Shadow, ShadowMode::HdOnly)},
    };
    const char *workload = "mcf";
    const std::uint64_t accesses = missesPerRun();

    std::printf("throughput: %llu payload accesses per point, "
                "workload %s\n",
                static_cast<unsigned long long>(accesses), workload);

    struct Row
    {
        const char *name;
        double seconds;
        double accessesPerSec;
    };
    std::vector<Row> rows;
    bool deterministic = true;

    for (const SchemePoint &point : schemes) {
        // Warm-up run: generates the workload trace and grows the
        // payload pools; its metrics are the determinism oracle.
        const RunMetrics warm = runPoint(point.cfg, workload);

        const auto t0 = std::chrono::steady_clock::now();
        const RunMetrics timed = runPoint(point.cfg, workload);
        const auto t1 = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(t1 - t0).count();
        const double rate =
            seconds > 0.0 ? static_cast<double>(accesses) / seconds
                          : 0.0;
        rows.push_back({point.name, seconds, rate});
        std::printf("  %-10s %8.3f s  %10.0f accesses/s\n",
                    point.name, seconds, rate);

        if (metricsFingerprint(warm) != metricsFingerprint(timed)) {
            std::fprintf(stderr,
                         "throughput: %s metrics differ between "
                         "passes — the payload path is "
                         "nondeterministic\n",
                         point.name);
            deterministic = false;
        }
    }

    if (FILE *f = std::fopen("BENCH_throughput.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"throughput\",\n"
                     "  \"workload\": \"%s\",\n"
                     "  \"accesses_per_point\": %llu,\n"
                     "  \"payload_enabled\": true,\n"
                     "  \"schemes\": {\n",
                     workload,
                     static_cast<unsigned long long>(accesses));
        for (std::size_t i = 0; i < rows.size(); ++i) {
            std::fprintf(f,
                         "    \"%s\": {\"wall_seconds\": %.6f, "
                         "\"accesses_per_sec\": %.1f}%s\n",
                         rows[i].name, rows[i].seconds,
                         rows[i].accessesPerSec,
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
    } else {
        std::fprintf(
            stderr,
            "throughput: cannot write BENCH_throughput.json\n");
    }

    return deterministic ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
