/**
 * @file
 * Chaos storm — the recovery escalation ladder under escalating,
 * deterministic fault storms.
 *
 * Where fault_sweep measures detection/heal rates at memoryless fault
 * rates, this harness drives the *whole* ladder end to end: rate
 * ramps, correlated bursts, subtree-targeted storms and stuck-cell
 * campaigns run against every duplication policy with slot
 * quarantine (tier 1), stash backpressure (tier 2) and checkpoint
 * auto-rollback (tier 3) armed.  Every point runs under
 * UnrecoverablePolicy::Throw, so a payload is either healed or the
 * run rolls back and replays — a wrong payload can never leak into
 * the output.
 *
 * Per point the harness reports availability (did the run complete
 * within its rollback budget), recoveries per tier, time spent in
 * degraded mode, and replay MTTR (replayed accesses per rollback).
 * Results land in BENCH_resilience.json next to the binary; every
 * point runs twice and the two passes must agree on an outcome
 * fingerprint, so the recovery ladder cannot hide nondeterminism
 * behind a resilience report.  The JSON contains no wall-clock
 * values: it is byte-identical at any SB_BENCH_THREADS.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "BenchUtil.hh"

using namespace sboram;
using namespace sboram::bench;

namespace {

/** Rollback budget per run; part of the point fingerprint. */
constexpr unsigned kMaxRollbacks = 12;
/** Snapshot cadence: bounds the replay distance per rollback. */
constexpr unsigned kCkptInterval = 250;

/** Functional-scale payload-mode system with the ladder armed. */
SystemConfig
chaosSystem()
{
    SystemConfig cfg;
    cfg.oram.dataBlocks = std::uint64_t(1) << 12;
    cfg.oram.posMapMode = PosMapMode::OnChip;
    cfg.oram.payloadEnabled = true;
    cfg.oram.stashCapacity = 200;
    cfg.oram.health.quarantineThreshold = 2;
    // Backstop watermarks: above the post-access real-stash swing at
    // this scale, so tier 2 stays out of the fault profiles' way (its
    // duplication suppression would starve tier 0 of shadows during
    // the storms).  The congest profile overrides them downward to
    // exercise the latch.
    cfg.oram.health.stashHighWatermark = 10;
    cfg.oram.health.stashLowWatermark = 4;
    cfg.maxAutoRollbacks = kMaxRollbacks;
    cfg.checkpointInterval = kCkptInterval;
    cfg.timingProtection = false;
    return cfg;
}

/** One storm profile: a sequence of fault phases, run independently
 *  and aggregated per point. */
struct Profile
{
    const char *name;
    std::vector<FaultConfig> phases;
    /** Nonzero: override the tier-2 watermarks for this profile.  The
     *  latch samples *post-access* real-stash occupancy (not the
     *  transient mid-path peak), so watermarks must sit inside that
     *  swing — 4/3 at this scale — to cycle degraded mode. */
    unsigned highWatermark = 0;
    unsigned lowWatermark = 0;
};

std::vector<Profile>
makeProfiles()
{
    FaultConfig base;
    base.seed = 7;
    base.onUnrecoverable = UnrecoverablePolicy::Throw;

    std::vector<Profile> profiles;

    {
        // Escalating background corruption: three rate steps.
        Profile p{"ramp", {}};
        for (double rate : {2e-4, 5e-4, 1e-3}) {
            FaultConfig f = base;
            f.rate = rate;
            p.phases.push_back(f);
        }
        profiles.push_back(p);
    }
    {
        // Correlated burst: high rate confined to the first 8
        // accesses of every 64-access window (controller brown-out).
        FaultConfig f = base;
        f.rate = 0.02;
        f.burstEvery = 128;
        f.burstLen = 8;
        profiles.push_back({"burst", {f}});
    }
    {
        // Spatially correlated storm: one quarter of the tree (top-2
        // leaf bits == 01) takes every fault.
        FaultConfig f = base;
        f.rate = 4e-3;
        f.subtreeLevels = 2;
        f.subtreePrefix = 1;
        profiles.push_back({"subtree", {f}});
    }
    {
        // Stuck-cell campaign: long-lived stuck bits only — the
        // repeat offenders the tier-1 quarantine table exists for.
        FaultConfig f = base;
        f.rate = 1e-3;
        f.bitFlips = false;
        f.droppedWrites = false;
        f.stuckWrites = 8;
        profiles.push_back({"stuck", {f}});
    }
    {
        // Congestion drill: the ramp's top corruption rate with the
        // tier-2 watermarks pulled inside the occupancy swing, so the
        // degraded-mode latch cycles (emergency sweeps + duplication
        // suppression) while faults are landing.  Availability must
        // still be 1.0: degradation costs cycles, never correctness.
        FaultConfig f = base;
        f.rate = 1e-3;
        profiles.push_back({"congest", {f}, 4, 3});
    }
    {
        // Full storm: every fault kind at the highest sustained rate
        // the rollback budget is sized for.
        FaultConfig f = base;
        f.rate = 6e-3;
        profiles.push_back({"storm", {f}});
    }
    return profiles;
}

struct Policy
{
    const char *name;
    Scheme scheme;
    ShadowMode mode;
};

const std::vector<Policy> &
policies()
{
    static const std::vector<Policy> kPolicies = {
        {"tiny", Scheme::Tiny, ShadowMode::RdOnly},
        {"rd", Scheme::Shadow, ShadowMode::RdOnly},
        {"hd", Scheme::Shadow, ShadowMode::HdOnly},
        {"dynamic", Scheme::Shadow, ShadowMode::DynamicPartition},
    };
    return kPolicies;
}

/** Result of one phase run (one runSystem call with the ladder). */
struct PhaseOutcome
{
    bool completed = false;
    RunMetrics m;
    /** Access count of the final CorruptionError when !completed. */
    std::uint64_t failedAt = 0;
};

/**
 * Deterministic digest of a phase outcome — the warm/timed passes
 * must agree on it, completed or not.
 */
std::uint64_t
outcomeFingerprint(const PhaseOutcome &o)
{
    if (!o.completed)
        return 0xdeadULL ^ o.failedAt * 0x100000001b3ULL;
    const RunMetrics &m = o.m;
    return m.execTime + m.requests * 31 + m.pathReads * 7 +
           m.shadowsWritten * 3 + m.faultsDetected * 13 +
           m.faultsRecovered * 11 + m.slotsQuarantined * 101 +
           m.quarantineEvacuations * 103 + m.degradedEntries * 29 +
           m.emergencyEvictions * 37 + m.rollbacks * 997 +
           m.replayedAccesses * 5;
}

/**
 * Run one phase with a private checkpoint session (tier 3 needs
 * somewhere to roll back to).  Self-contained: runs on a worker via
 * defer(), every capture by value.  A CorruptionError here means the
 * rollback budget is spent — that is the availability loss this
 * bench measures, not a harness failure.
 */
PhaseOutcome
runPhase(SystemConfig cfg, std::string workload, std::uint64_t misses,
         std::string ckptDir, std::uint64_t key)
{
    const SharedTrace trace = cachedTrace(workload, misses, kBenchSeed);
    ckpt::CheckpointSession session(ckptDir, key);
    session.removeSnapshots();  // Stale state from a killed prior run.
    PhaseOutcome out;
    try {
        out.m = runSystem(cfg, *trace, &session);
        out.completed = true;
        session.removeSnapshots();
        return out;
    } catch (const CorruptionError &e) {
        out.failedAt = e.accessCount();
        session.removeSnapshots();
        return out;
    }
}

/** Aggregate of one (profile, policy) point across its phases. */
struct PointResult
{
    unsigned phasesTotal = 0;
    unsigned phasesCompleted = 0;
    std::uint64_t injected = 0;
    std::uint64_t detected = 0;
    std::uint64_t tier0Healed = 0;
    std::uint64_t tier1Quarantined = 0;
    std::uint64_t tier1Evacuations = 0;
    std::uint64_t tier2Entries = 0;
    std::uint64_t tier2Ticks = 0;
    std::uint64_t tier2Evictions = 0;
    std::uint64_t tier3Rollbacks = 0;
    std::uint64_t replayedAccesses = 0;
    std::uint64_t peakStash = 0;

    double
    availability() const
    {
        return phasesTotal == 0
                   ? 0.0
                   : static_cast<double>(phasesCompleted) /
                         static_cast<double>(phasesTotal);
    }

    /** Mean replay distance per rollback (accesses). */
    double
    mttr() const
    {
        return tier3Rollbacks == 0
                   ? 0.0
                   : static_cast<double>(replayedAccesses) /
                         static_cast<double>(tier3Rollbacks);
    }

    void
    add(const PhaseOutcome &o)
    {
        ++phasesTotal;
        if (!o.completed)
            return;
        ++phasesCompleted;
        injected += o.m.faultsInjected;
        detected += o.m.faultsDetected;
        tier0Healed += o.m.faultsRecovered;
        tier1Quarantined += o.m.slotsQuarantined;
        tier1Evacuations += o.m.quarantineEvacuations;
        tier2Entries += o.m.degradedEntries;
        tier2Ticks += o.m.degradedTicks;
        tier2Evictions += o.m.emergencyEvictions;
        tier3Rollbacks += o.m.rollbacks;
        replayedAccesses += o.m.replayedAccesses;
        peakStash = std::max<std::uint64_t>(peakStash,
                                            o.m.stashPeakReal);
    }
};

} // namespace

static int
runBench()
{
    // Forced-panic drill: one unprotected point — heavy fault storm,
    // Throw policy, no rollback budget, no session — so the
    // CorruptionError escapes runSystem and unwinds all the way to
    // guardedMain.  This exercises the real panic path end to end:
    // exit code 2, panic-diag + panic-flight on stderr, and a
    // flightrec artifact carrying the "panic" dump.  The drill's
    // simulated outcome is itself deterministic (PRF faults, fixed
    // trace); the switch only selects which experiment runs.
    // sblint:allow-next-line(ambient-nondeterminism): panic-drill on/off switch, not an experiment knob
    if (const char *drill = std::getenv("SB_CHAOS_FORCE_PANIC")) {
        if (drill[0] == '1') {
            SystemConfig cfg = chaosSystem();
            cfg.scheme = Scheme::Tiny;
            cfg.oram.fault.rate = 0.05;
            cfg.oram.fault.seed = 7;
            cfg.oram.fault.onUnrecoverable =
                UnrecoverablePolicy::Throw;
            cfg.maxAutoRollbacks = 0;
            const SharedTrace trace = cachedTrace("mcf", 600,
                                                  kBenchSeed);
            runSystem(cfg, *trace);
            std::fprintf(stderr,
                         "chaos_storm: forced-panic drill survived — "
                         "the storm did not corrupt anything\n");
            return 1;
        }
    }

    const std::vector<Profile> profiles = makeProfiles();
    const std::string workload = "mcf";
    // Phase length is an experiment parameter, not a throughput knob:
    // the storm rates and the rollback budget are sized for
    // 1500-access phases.  SB_BENCH_MISSES still overrides for
    // scaling studies (the determinism gate holds at any length).
    const std::uint64_t misses =
        // sblint:allow-next-line(ambient-nondeterminism): presence check only selects the documented default phase length
        std::getenv("SB_BENCH_MISSES") ? missesPerRun() : 1500;

    // Tier 3 rolls back to on-disk snapshots; give every point a
    // private key in one scratch directory under the working dir.
    const std::string ckptDir = "chaos-ckpt";
    if (::mkdir(ckptDir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "chaos_storm: cannot create '%s'\n",
                     ckptDir.c_str());
        return 1;
    }

    std::printf("chaos_storm: %llu accesses per phase, workload %s, "
                "rollback budget %u\n",
                static_cast<unsigned long long>(misses),
                workload.c_str(), kMaxRollbacks);

    // Submit every (profile, policy, phase) twice: pass 0 is the
    // result, pass 1 the determinism oracle.  All futures enqueue up
    // front; results are read in submission order, so the output is
    // byte-identical at any SB_BENCH_THREADS.
    struct Slot
    {
        Future<PhaseOutcome> pass[2];
    };
    std::vector<Slot> slots;
    std::uint64_t pointIndex = 0;
    for (const Profile &profile : profiles) {
        for (const Policy &policy : policies()) {
            for (const FaultConfig &fault : profile.phases) {
                SystemConfig cfg = withScheme(
                    chaosSystem(), policy.scheme, policy.mode);
                cfg.oram.fault = fault;
                if (profile.highWatermark) {
                    cfg.oram.health.stashHighWatermark =
                        profile.highWatermark;
                    cfg.oram.health.stashLowWatermark =
                        profile.lowWatermark;
                }
                Slot slot;
                for (unsigned pass = 0; pass < 2; ++pass) {
                    const std::uint64_t key =
                        configFingerprint(cfg) ^
                        (0x517cc1b727220a95ULL *
                         (pointIndex * 2 + pass + 1));
                    slot.pass[pass] = runner().defer(
                        [cfg, workload, misses, ckptDir, key] {
                            return runPhase(cfg, workload, misses,
                                            ckptDir, key);
                        });
                }
                slots.push_back(slot);
                ++pointIndex;
            }
        }
    }

    Table t("Chaos storm — recovery ladder under escalating faults");
    t.header({"profile", "policy", "avail", "detected", "t0-heal",
              "t1-quar", "t2-entries", "t3-rollback", "mttr",
              "peak-stash"});

    struct Row
    {
        const char *profile;
        const char *policy;
        PointResult r;
    };
    std::vector<Row> rows;
    bool deterministic = true;
    std::size_t slotIdx = 0;
    for (const Profile &profile : profiles) {
        for (const Policy &policy : policies()) {
            PointResult r;
            for (std::size_t ph = 0; ph < profile.phases.size();
                 ++ph) {
                const Slot &slot = slots[slotIdx++];
                const PhaseOutcome &o0 = slot.pass[0].get();
                const PhaseOutcome &o1 = slot.pass[1].get();
                if (outcomeFingerprint(o0) != outcomeFingerprint(o1)) {
                    std::fprintf(stderr,
                                 "chaos_storm: %s/%s phase %zu "
                                 "outcomes differ between passes — "
                                 "the recovery ladder is "
                                 "nondeterministic\n",
                                 profile.name, policy.name, ph);
                    deterministic = false;
                }
                r.add(o0);
            }
            rows.push_back({profile.name, policy.name, r});
            t.beginRow(profile.name);
            t.cell(policy.name);
            t.cell(r.availability(), 2);
            t.cell(r.detected);
            t.cell(r.tier0Healed);
            t.cell(r.tier1Quarantined);
            t.cell(r.tier2Entries);
            t.cell(r.tier3Rollbacks);
            t.cell(r.mttr(), 1);
            t.cell(r.peakStash);
        }
    }
    t.print();
    std::printf("\navailability 1.00 means every phase finished "
                "inside its rollback budget; a wrong payload is "
                "impossible under Throw — it either heals or rolls "
                "back.  congest cycles the tier-2 latch hundreds of "
                "times without losing a phase (degradation costs "
                "cycles, never correctness); the no-duplication "
                "baseline losing the full storm while rd/hd/dynamic "
                "ride it out is the paper's redundancy argument "
                "measured as availability\n");

    if (FILE *f = std::fopen("BENCH_resilience.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"chaos_storm\",\n"
                     "  \"workload\": \"%s\",\n"
                     "  \"accesses_per_phase\": %llu,\n"
                     "  \"max_auto_rollbacks\": %u,\n"
                     "  \"checkpoint_interval\": %u,\n"
                     "  \"deterministic\": %s,\n"
                     "  \"points\": [\n",
                     workload.c_str(),
                     static_cast<unsigned long long>(misses),
                     kMaxRollbacks, kCkptInterval,
                     deterministic ? "true" : "false");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            const PointResult &r = row.r;
            std::fprintf(
                f,
                "    {\"profile\": \"%s\", \"policy\": \"%s\", "
                "\"availability\": %.4f, "
                "\"injected\": %llu, \"detected\": %llu, "
                "\"tier0_healed\": %llu, "
                "\"tier1_quarantined\": %llu, "
                "\"tier1_evacuations\": %llu, "
                "\"tier2_entries\": %llu, "
                "\"tier2_degraded_ticks\": %llu, "
                "\"tier2_emergency_evictions\": %llu, "
                "\"tier3_rollbacks\": %llu, "
                "\"replayed_accesses\": %llu, "
                "\"mttr_accesses\": %.2f, "
                "\"peak_stash\": %llu}%s\n",
                row.profile, row.policy, r.availability(),
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.detected),
                static_cast<unsigned long long>(r.tier0Healed),
                static_cast<unsigned long long>(r.tier1Quarantined),
                static_cast<unsigned long long>(r.tier1Evacuations),
                static_cast<unsigned long long>(r.tier2Entries),
                static_cast<unsigned long long>(r.tier2Ticks),
                static_cast<unsigned long long>(r.tier2Evictions),
                static_cast<unsigned long long>(r.tier3Rollbacks),
                static_cast<unsigned long long>(r.replayedAccesses),
                r.mttr(),
                static_cast<unsigned long long>(r.peakStash),
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
    } else {
        std::fprintf(
            stderr,
            "chaos_storm: cannot write BENCH_resilience.json\n");
    }

    return deterministic ? 0 : 1;
}

int
main(int argc, char **argv)
{
    return sboram::bench::guardedMain(argc, argv, runBench);
}
